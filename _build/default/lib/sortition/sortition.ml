(* Cryptographic sortition: Algorithms 1 and 2 of the paper.

   A user with weight w (currency units) out of a total W is selected
   for an expected-size-tau role by evaluating a VRF on seed||role and
   mapping the pseudo-random hash fraction through the binomial CDF of
   B(.; w, tau/W). The returned j is the number of selected sub-users;
   j = 0 means not selected. Splitting weight across Sybils does not
   change the distribution of the total selected count (binomial
   additivity), which is the Sybil-resistance argument of section 5.1. *)

open Algorand_crypto

type selection = {
  vrf_hash : string;  (** VRF output; doubles as the priority source (section 6). *)
  vrf_proof : string;
  j : int;  (** Number of selected sub-users; 0 = not selected. *)
}

(* The hash fraction hash/2^hashlen, using the top 53 bits (double
   precision). Selection events with probability below 2^-53 are
   rounded away, which is far below every threshold the protocol
   uses. *)
let hash_fraction (hash : string) : float =
  let v = ref 0.0 in
  for i = 0 to min 6 (String.length hash - 1) do
    v := (!v *. 256.0) +. float_of_int (Char.code hash.[i])
  done;
  !v /. (256.0 ** float_of_int (min 7 (String.length hash)))

let vrf_input ~(seed : string) ~(role : string) : string = seed ^ "|" ^ role

(* Algorithm 1. *)
let select ~(prover : Vrf.prover) ~(seed : string) ~(tau : float) ~(role : string)
    ~(w : int) ~(total_weight : int) : selection =
  if w < 0 || total_weight <= 0 || w > total_weight then
    invalid_arg "Sortition.select: bad weights";
  let vrf_hash, vrf_proof = prover.prove (vrf_input ~seed ~role) in
  let p = tau /. float_of_int total_weight in
  let j = Binomial.select_j ~frac:(hash_fraction vrf_hash) ~w ~p in
  { vrf_hash; vrf_proof; j }

(* Algorithm 2: returns j (0 if the proof is invalid or not selected). *)
let verify ~(scheme : Vrf.scheme) ~(pk : string) ~(vrf_hash : string)
    ~(vrf_proof : string) ~(seed : string) ~(tau : float) ~(role : string) ~(w : int)
    ~(total_weight : int) : int =
  if w < 0 || total_weight <= 0 || w > total_weight then 0
  else begin
    match scheme.verify ~pk ~input:(vrf_input ~seed ~role) ~proof:vrf_proof with
    | None -> 0
    | Some h when not (String.equal h vrf_hash) -> 0
    | Some _ ->
      let p = tau /. float_of_int total_weight in
      Binomial.select_j ~frac:(hash_fraction vrf_hash) ~w ~p
  end

(* Block-proposal priority (section 6): the priority of sub-user [index]
   is H(vrf_hash || index); a proposer's priority is the highest over
   its selected sub-users. Higher byte-string compares win; we compare
   hashes lexicographically. *)
let sub_user_priority ~(vrf_hash : string) ~(index : int) : string =
  Sha256.digest_concat [ vrf_hash; string_of_int index ]

let best_priority ~(vrf_hash : string) ~(j : int) : string option =
  if j <= 0 then None
  else begin
    let best = ref (sub_user_priority ~vrf_hash ~index:1) in
    for index = 2 to j do
      let p = sub_user_priority ~vrf_hash ~index in
      if String.compare p !best > 0 then best := p
    done;
    Some !best
  end
