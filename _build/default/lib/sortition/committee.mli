(** Committee-size analysis (section 7.5 / Figure 3).

    Honest and byzantine committee membership counts are modeled as
    independent Poisson variables with means h*tau and (1-h)*tau; a
    step's parameters (tau, T) are violated when either liveness
    (g > T*tau) or safety (g/2 + b <= T*tau) fails. *)

val default_violation_target : float
(** 5e-9, the probability Figure 3 is drawn at. *)

val liveness_failure : h:float -> tau:float -> t:float -> float
(** P(g <= T*tau). *)

val safety_failure : h:float -> tau:float -> t:float -> float
(** P(g/2 + b > T*tau). *)

val violation_probability : h:float -> tau:float -> t:float -> float
(** Union bound of the two failures. *)

val best_threshold : h:float -> tau:float -> float * float
(** [(t, violation)] minimizing the violation probability over T. *)

val required_committee_size : ?target:float -> h:float -> unit -> int * float
(** Smallest expected committee size meeting [target] at honest
    fraction [h], with the threshold achieving it. Reproduces the
    Figure 3 curve. @raise Invalid_argument when [h <= 2/3]. *)

val final_step_violation : h:float -> tau:float -> t:float -> float
(** Safety failure alone, the constraint sizing the final step
    (tau_final = 10,000, T_final = 0.74). *)
