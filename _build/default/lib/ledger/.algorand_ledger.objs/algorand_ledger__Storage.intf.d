lib/ledger/storage.mli:
