lib/ledger/genesis.mli: Balances Block
