lib/ledger/transaction.mli: Algorand_crypto Format Signature_scheme
