lib/ledger/txpool.ml: List Queue Set String Transaction
