lib/ledger/wire.mli:
