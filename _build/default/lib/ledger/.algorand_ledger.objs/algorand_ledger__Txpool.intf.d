lib/ledger/txpool.mli: Transaction
