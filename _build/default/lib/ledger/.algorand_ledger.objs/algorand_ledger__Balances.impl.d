lib/ledger/balances.ml: Format List Map Result String Transaction
