lib/ledger/storage.ml: Algorand_crypto Sha256
