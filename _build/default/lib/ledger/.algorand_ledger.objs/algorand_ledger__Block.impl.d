lib/ledger/block.ml: Algorand_crypto Format Hex List Merkle Option Sha256 String Transaction Wire
