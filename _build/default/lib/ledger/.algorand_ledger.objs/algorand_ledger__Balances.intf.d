lib/ledger/balances.mli: Format Transaction
