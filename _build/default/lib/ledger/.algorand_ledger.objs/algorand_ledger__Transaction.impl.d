lib/ledger/transaction.ml: Algorand_crypto Format Hex Sha256 Signature_scheme String Wire
