lib/ledger/chain.ml: Algorand_crypto Balances Block Format Genesis Hashtbl List Map String
