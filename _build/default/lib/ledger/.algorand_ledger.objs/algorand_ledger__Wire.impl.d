lib/ledger/wire.ml: Char List String
