lib/ledger/genesis.ml: Algorand_crypto Balances Block List Sha256 String
