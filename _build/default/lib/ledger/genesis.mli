(** Bootstrapping (section 8.3): the common genesis block with initial
    balances and seed_0 (modeled distributed randomness: a hash over
    all initial keys and a public nonce). *)

type t = {
  block : Block.t;
  balances : Balances.t;
  seed0 : string;
}

val make : ?nonce:string -> (string * int) list -> t
(** [make allocations] with positive initial stakes.
    @raise Invalid_argument on empty or non-positive allocations. *)

val hash : t -> string
