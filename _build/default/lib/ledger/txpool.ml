(* The pending-transaction pool each user maintains (Figure 1): users
   collect transactions from the gossip network so that, if selected as
   a block proposer, they have a block ready. Deduplicated by
   transaction id, drained in arrival order. *)

module Sset = Set.Make (String)

type t = {
  mutable seen : Sset.t;
  queue : Transaction.t Queue.t;
  mutable bytes : int;
}

let create () = { seen = Sset.empty; queue = Queue.create (); bytes = 0 }

(* Returns true if the transaction was new. *)
let add (t : t) (tx : Transaction.t) : bool =
  let id = Transaction.id tx in
  if Sset.mem id t.seen then false
  else begin
    t.seen <- Sset.add id t.seen;
    Queue.add tx t.queue;
    t.bytes <- t.bytes + Transaction.size_bytes tx;
    true
  end

let mem (t : t) (tx : Transaction.t) : bool = Sset.mem (Transaction.id tx) t.seen

(* Select pending transactions up to [max_bytes] of serialized size
   without removing them - block proposers use this: a proposal may
   lose BA*, and only *committed* transactions should leave the pool
   (via [remove_committed]). *)
let select (t : t) ~(max_bytes : int) : Transaction.t list =
  let acc = ref [] and used = ref 0 and full = ref false in
  Queue.iter
    (fun tx ->
      if not !full then begin
        let sz = Transaction.size_bytes tx in
        if !used + sz > max_bytes then full := true
        else begin
          acc := tx :: !acc;
          used := !used + sz
        end
      end)
    t.queue;
  List.rev !acc

(* Take pending transactions up to [max_bytes] of serialized size,
   removing them from the pool. *)
let take (t : t) ~(max_bytes : int) : Transaction.t list =
  let rec go acc used =
    match Queue.peek_opt t.queue with
    | None -> List.rev acc
    | Some tx ->
      let sz = Transaction.size_bytes tx in
      if used + sz > max_bytes then List.rev acc
      else begin
        ignore (Queue.pop t.queue);
        t.bytes <- t.bytes - sz;
        go (tx :: acc) (used + sz)
      end
  in
  go [] 0

(* Drop transactions that made it into an agreed block. *)
let remove_committed (t : t) (txs : Transaction.t list) : unit =
  let committed = Sset.of_list (List.map Transaction.id txs) in
  let keep = Queue.create () in
  Queue.iter
    (fun tx ->
      if not (Sset.mem (Transaction.id tx) committed) then Queue.add tx keep
      else t.bytes <- t.bytes - Transaction.size_bytes tx)
    t.queue;
  Queue.clear t.queue;
  Queue.transfer keep t.queue

let size (t : t) : int = Queue.length t.queue
let bytes (t : t) : int = t.bytes
