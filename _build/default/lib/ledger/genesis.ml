(* Bootstrapping (section 8.3): a common genesis block carrying the
   initial balances and seed_0. The paper takes seed_0 from distributed
   random number generation after the initial public keys are declared;
   we model that by hashing every initial public key together with a
   public nonce - any participant can recompute and audit it. *)

open Algorand_crypto

type t = {
  block : Block.t;
  balances : Balances.t;
  seed0 : string;
}

let make ?(nonce = "algorand-genesis") (allocations : (string * int) list) : t =
  if allocations = [] then invalid_arg "Genesis.make: no initial accounts";
  List.iter
    (fun (_, amount) -> if amount <= 0 then invalid_arg "Genesis.make: non-positive stake")
    allocations;
  let balances =
    List.fold_left (fun acc (pk, amount) -> Balances.credit acc pk amount) Balances.empty
      allocations
  in
  let seed0 =
    Sha256.digest_concat ("genesis-seed" :: nonce :: List.map fst allocations)
  in
  let base = Block.empty ~round:0 ~prev_hash:(String.make 32 '\000') in
  (* Timestamp -1 so a block proposed at simulated time 0 still passes
     the "timestamp greater than the previous block's" check (8.1). *)
  let block =
    { base with header = { base.header with seed = seed0; timestamp = -1.0 } }
  in
  { block; balances; seed0 }

let hash (g : t) : string = Block.hash g.block
