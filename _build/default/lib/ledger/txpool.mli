(** The pending-transaction pool (Figure 1): deduplicated by id,
    drained FIFO. *)

type t

val create : unit -> t

val add : t -> Transaction.t -> bool
(** [true] iff the transaction was new. *)

val mem : t -> Transaction.t -> bool

val select : t -> max_bytes:int -> Transaction.t list
(** Like [take] but non-destructive: what block proposers use, since a
    losing proposal must not cost the pool its transactions. *)

val take : t -> max_bytes:int -> Transaction.t list
(** Remove and return pending transactions up to [max_bytes] of
    serialized size, oldest first. *)

val remove_committed : t -> Transaction.t list -> unit
val size : t -> int
val bytes : t -> int
