(** Block/certificate storage sharding (section 8.3): a user stores the
    rounds matching its key modulo the shard count. *)

val shard_of_pk : shards:int -> string -> int
val stores : shards:int -> pk:string -> round:int -> bool

val per_block_cost_bytes : shards:int -> block_bytes:int -> certificate_bytes:int -> float
(** Expected bytes stored per appended block (section 10.3). *)
