(* Block/certificate storage sharding (section 8.3): for N shards, a
   user stores the blocks and certificates whose round number equals
   (their public key mod N). This module captures the assignment rule
   and the storage-cost accounting reported in section 10.3. *)

open Algorand_crypto

let shard_of_pk ~(shards : int) (pk : string) : int =
  if shards <= 0 then invalid_arg "Storage.shard_of_pk";
  Sha256.digest_int pk mod shards

let stores ~(shards : int) ~(pk : string) ~(round : int) : bool =
  shards = 1 || round mod shards = shard_of_pk ~shards pk

(* Expected bytes a user stores per appended block: the block plus its
   certificate, divided across shards. *)
let per_block_cost_bytes ~(shards : int) ~(block_bytes : int) ~(certificate_bytes : int) :
    float =
  float_of_int (block_bytes + certificate_bytes) /. float_of_int (max 1 shards)
