(** Signed payment transactions. The per-sender [nonce] equals the
    sender's sequence number at application time, which is the ledger's
    replay/double-spend rejection rule. *)

open Algorand_crypto

type t = {
  sender : string;  (** public key *)
  recipient : string;
  amount : int;
  nonce : int;
  signature : string;
}

val make :
  signer:Signature_scheme.signer ->
  sender:string ->
  recipient:string ->
  amount:int ->
  nonce:int ->
  t
(** @raise Invalid_argument on negative amounts. *)

val serialize : t -> string
val deserialize : string -> t option
val id : t -> string
(** SHA-256 of the canonical serialization. *)

val verify_signature : scheme:Signature_scheme.scheme -> t -> bool
val size_bytes : t -> int
val pp : Format.formatter -> t -> unit
