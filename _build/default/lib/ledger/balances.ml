(* The account state derived from a chain prefix: per-key balances (the
   sortition weights of section 5.1) and per-key nonces. Purely
   functional so that fork branches can share prefixes cheaply. *)

module Smap = Map.Make (String)

type t = { balances : int Smap.t; nonces : int Smap.t; total : int }

let empty = { balances = Smap.empty; nonces = Smap.empty; total = 0 }

let balance (t : t) (pk : string) : int =
  match Smap.find_opt pk t.balances with Some b -> b | None -> 0

let nonce (t : t) (pk : string) : int =
  match Smap.find_opt pk t.nonces with Some n -> n | None -> 0

let total (t : t) : int = t.total

let credit (t : t) (pk : string) (amount : int) : t =
  {
    t with
    balances = Smap.add pk (balance t pk + amount) t.balances;
    total = t.total + amount;
  }

type tx_error = [ `Bad_nonce of int * int | `Insufficient_balance of int * int ]

let pp_tx_error fmt = function
  | `Bad_nonce (expected, got) -> Format.fprintf fmt "bad nonce: expected %d, got %d" expected got
  | `Insufficient_balance (have, want) ->
    Format.fprintf fmt "insufficient balance: have %d, want %d" have want

(* Validate and apply one transaction. *)
let apply_tx (t : t) (tx : Transaction.t) : (t, tx_error) result =
  let expected = nonce t tx.sender in
  if tx.nonce <> expected then Error (`Bad_nonce (expected, tx.nonce))
  else begin
    let have = balance t tx.sender in
    if have < tx.amount then Error (`Insufficient_balance (have, tx.amount))
    else
      Ok
        {
          balances =
            t.balances
            |> Smap.add tx.sender (have - tx.amount)
            |> Smap.add tx.recipient (balance t tx.recipient + tx.amount);
          nonces = Smap.add tx.sender (expected + 1) t.nonces;
          total = t.total;
        }
  end

let apply_all (t : t) (txs : Transaction.t list) : (t, tx_error) result =
  List.fold_left
    (fun acc tx -> Result.bind acc (fun st -> apply_tx st tx))
    (Ok t) txs

let weights (t : t) : (string * int) list = Smap.bindings t.balances

let holders (t : t) : int = Smap.cardinal t.balances
