(** Minimal canonical serialization: fixed-width integers and
    length-prefixed fields. One encoding per value, suitable for
    hashing. *)

val u64 : int -> string
(** 8-byte big-endian. *)

val read_u64 : string -> int -> int
val field : string -> string

val concat : string list -> string
(** Length-prefixed concatenation. *)

val split : string -> string list
(** Inverse of [concat]. @raise Invalid_argument on truncated input. *)
