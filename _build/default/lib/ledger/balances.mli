(** Account state derived from a chain prefix: balances (the sortition
    weights of section 5.1) and per-key nonces. Purely functional so
    fork branches share prefixes. *)

type t

val empty : t
val balance : t -> string -> int
val nonce : t -> string -> int
val total : t -> int
val credit : t -> string -> int -> t

type tx_error = [ `Bad_nonce of int * int | `Insufficient_balance of int * int ]

val pp_tx_error : Format.formatter -> tx_error -> unit

val apply_tx : t -> Transaction.t -> (t, tx_error) result
(** Validate (nonce, balance) and apply one payment. *)

val apply_all : t -> Transaction.t list -> (t, tx_error) result

val weights : t -> (string * int) list
val holders : t -> int
