(* SplitMix64: a tiny, fast, high-quality deterministic PRNG. Every
   source of simulation randomness (topology, jitter, workload,
   adversary) gets its own stream so experiments are reproducible and
   independently perturbable. *)

type t = { mutable state : int64 }

let create (seed : int) : t = { state = Int64.of_int seed }

let split (t : t) (label : string) : t =
  (* Derive an independent stream; hashing keeps labels order-free. *)
  let h = Hashtbl.hash (Int64.to_int t.state, label) in
  { state = Int64.add (Int64.of_int h) 0x9E3779B97F4A7C15L }

let next_int64 (t : t) : int64 =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let float (t : t) (bound : float) : float =
  let u = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) /. 9007199254740992.0 in
  u *. bound

let bool (t : t) : bool = Int64.logand (next_int64 t) 1L = 1L

(* Exponential with the given mean (for Poisson processes). *)
let exponential (t : t) ~(mean : float) : float =
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

(* Fisher-Yates shuffle (in place). *)
let shuffle (t : t) (a : 'a array) : unit =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Sample [k] distinct indices from [0, n). *)
let sample_indices (t : t) ~(n : int) ~(k : int) : int list =
  if k > n then invalid_arg "Rng.sample_indices";
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  Array.to_list (Array.sub a 0 k)

(* Pick an index with probability proportional to [weights]. *)
let weighted_index (t : t) (weights : float array) : int =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.weighted_index";
  let target = float t total in
  let rec go i acc =
    if i = Array.length weights - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if target < acc then i else go (i + 1) acc
    end
  in
  go 0 0.0
