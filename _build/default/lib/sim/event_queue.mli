(** Binary min-heap of timestamped events with FIFO tie-breaking. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> time:float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
val peek_time : 'a t -> float option
