(* Summary statistics matching the paper's graphs, which plot the
   minimum, 25th percentile, median, 75th percentile and maximum of
   round completion times across users. *)

type summary = {
  count : int;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
  mean : float;
}

let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize (xs : float list) : summary =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then { count = 0; min = nan; p25 = nan; median = nan; p75 = nan; max = nan; mean = nan }
  else
    {
      count = n;
      min = a.(0);
      p25 = percentile a 0.25;
      median = percentile a 0.5;
      p75 = percentile a 0.75;
      max = a.(n - 1);
      mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n;
    }

let pp_summary fmt (s : summary) =
  Format.fprintf fmt "min=%.2f p25=%.2f med=%.2f p75=%.2f max=%.2f (n=%d)"
    s.min s.p25 s.median s.p75 s.max s.count

let mean (xs : float list) : float =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
