(* The discrete-event simulation loop: a virtual clock and a queue of
   thunks. Handlers run at their scheduled virtual time and may
   schedule further events. *)

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable now : float;
  mutable events_processed : int;
}

let create () : t = { queue = Event_queue.create (); now = 0.0; events_processed = 0 }

let now (t : t) : float = t.now

let schedule (t : t) ~(delay : float) (f : unit -> unit) : unit =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.push t.queue ~time:(t.now +. delay) f

let at (t : t) ~(time : float) (f : unit -> unit) : unit =
  Event_queue.push t.queue ~time:(max time t.now) f

(* Run until the queue drains or the clock passes [until]. Returns the
   number of events processed. *)
let run (t : t) ?(until = infinity) ?(max_events = max_int) () : int =
  let processed_before = t.events_processed in
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some time when time > until -> continue := false
    | Some _ ->
      if t.events_processed - processed_before >= max_events then continue := false
      else begin
        match Event_queue.pop t.queue with
        | None -> continue := false
        | Some (time, f) ->
          t.now <- time;
          t.events_processed <- t.events_processed + 1;
          f ()
      end
  done;
  t.events_processed - processed_before

let pending (t : t) : int = Event_queue.length t.queue
