(** SplitMix64 deterministic PRNG. Every randomness consumer gets its
    own labeled stream so experiments are reproducible and
    independently perturbable. *)

type t

val create : int -> t
val split : t -> string -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, bound)]. @raise Invalid_argument on bound <= 0. *)

val float : t -> float -> float
val bool : t -> bool
val exponential : t -> mean:float -> float
val shuffle : t -> 'a array -> unit
val sample_indices : t -> n:int -> k:int -> int list
val weighted_index : t -> float array -> int
