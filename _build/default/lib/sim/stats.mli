(** Summary statistics matching the paper's plots (min / p25 / median /
    p75 / max across users). *)

type summary = {
  count : int;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
  mean : float;
}

val percentile : float array -> float -> float
(** Linear interpolation on a sorted array. *)

val summarize : float list -> summary
val pp_summary : Format.formatter -> summary -> unit
val mean : float list -> float
