(* A binary min-heap of timestamped events. Ties are broken by
   insertion sequence so the simulation is fully deterministic. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* heap.(0) is a dummy slot *)
  mutable size : int;
  mutable next_seq : int;
}

let create () : 'a t = { heap = [||]; size = 0; next_seq = 0 }

let is_empty (t : 'a t) : bool = t.size = 0
let length (t : 'a t) : int = t.size

let before (a : 'a entry) (b : 'a entry) : bool =
  a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow (t : 'a t) (template : 'a entry) =
  let cap = Array.length t.heap in
  if t.size + 1 >= cap then begin
    let ncap = max 16 (2 * cap) in
    let h = Array.make ncap template in
    Array.blit t.heap 0 h 0 cap;
    t.heap <- h
  end

let push (t : 'a t) ~(time : float) (payload : 'a) : unit =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.size <- t.size + 1;
  let i = ref t.size in
  t.heap.(!i) <- entry;
  while !i > 1 && before t.heap.(!i) t.heap.(!i / 2) do
    let p = !i / 2 in
    let tmp = t.heap.(p) in
    t.heap.(p) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := p
  done

let pop (t : 'a t) : (float * 'a) option =
  if t.size = 0 then None
  else begin
    let top = t.heap.(1) in
    t.heap.(1) <- t.heap.(t.size);
    t.size <- t.size - 1;
    let i = ref 1 in
    let continue = ref true in
    while !continue do
      let l = 2 * !i and r = (2 * !i) + 1 in
      let smallest = ref !i in
      if l <= t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r <= t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
    done;
    Some (top.time, top.payload)
  end

let peek_time (t : 'a t) : float option = if t.size = 0 then None else Some t.heap.(1).time
