lib/sim/engine.mli:
