lib/sim/metrics.ml: Array Float List
