lib/sim/rng.mli:
