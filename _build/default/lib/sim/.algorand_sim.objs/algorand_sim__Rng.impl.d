lib/sim/rng.ml: Array Hashtbl Int64
