(** Discrete-event simulation loop: a virtual clock plus a queue of
    thunks. Fully deterministic (FIFO tie-breaking). *)

type t

val create : unit -> t
val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** @raise Invalid_argument on negative delays. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time scheduling; past times are clamped to now. *)

val run : t -> ?until:float -> ?max_events:int -> unit -> int
(** Process events until the queue drains, the clock passes [until], or
    [max_events] have run. Returns the number processed. *)

val pending : t -> int
