(* A minimal wallet: tracks the sender's nonce, constructs and submits
   signed payments through a node, and answers the question end users
   actually ask - "is my payment confirmed?" - using the paper's
   confirmation rule (section 8.2): a transaction is confirmed once it
   sits in a final block or in an ancestor of one. *)

module Chain = Algorand_ledger.Chain
module Balances = Algorand_ledger.Balances
module Transaction = Algorand_ledger.Transaction

type t = {
  identity : Identity.t;
  node : Node.t;
  mutable next_nonce : int;
}

let create ~(identity : Identity.t) ~(node : Node.t) : t =
  let chain = Node.chain node in
  let tip = Chain.tip chain in
  { identity; node; next_nonce = Balances.nonce tip.balances_after identity.pk }

let address (t : t) : string = t.identity.pk

let balance (t : t) : int =
  let chain = Node.chain t.node in
  Balances.balance (Chain.tip chain).balances_after t.identity.pk

(* Construct, record and submit a payment. The wallet hands out nonces
   sequentially so concurrent payments from one wallet serialize. *)
let pay (t : t) ~(to_ : string) ~(amount : int) : Transaction.t =
  let tx =
    Transaction.make ~signer:t.identity.signer ~sender:t.identity.pk ~recipient:to_
      ~amount ~nonce:t.next_nonce
  in
  t.next_nonce <- t.next_nonce + 1;
  Node.submit_tx t.node tx;
  tx

type status =
  | Pending  (** not yet in any block on the node's chain *)
  | Tentative of int  (** in the block at this round, not yet covered by finality *)
  | Confirmed of int
      (** in a final block or an ancestor of one (the paper's
          confirmation rule) *)

let pp_status fmt = function
  | Pending -> Format.fprintf fmt "pending"
  | Tentative r -> Format.fprintf fmt "tentative (round %d)" r
  | Confirmed r -> Format.fprintf fmt "confirmed (round %d)" r

let status (t : t) (tx : Transaction.t) : status =
  let chain = Node.chain t.node in
  let tip = Chain.tip chain in
  let tx_id = Transaction.id tx in
  let ancestry = Chain.ancestry chain tip.hash (* tip-first *) in
  (* Deepest final height on the tip path covers everything below it
     (final blocks are totally ordered, section 8.2). *)
  let final_height =
    List.fold_left
      (fun acc (e : Chain.entry) -> if e.final then max acc e.height else acc)
      0 ancestry
  in
  let containing =
    List.find_opt
      (fun (e : Chain.entry) ->
        List.exists (fun tx' -> String.equal (Transaction.id tx') tx_id) e.block.txs)
      ancestry
  in
  match containing with
  | None -> Pending
  | Some e -> if e.height <= final_height then Confirmed e.height else Tentative e.height
