(** Block proposal (section 6): proposer sortition, priorities, the
    two-message gossip scheme, and next-round seed evolution (5.2). *)

open Algorand_crypto

type priority_msg = {
  round : int;
  proposer_pk : string;  (** composite user key *)
  prev_hash : string;
  vrf_hash : string;
  vrf_proof : string;
  priority : string;  (** highest sub-user priority *)
}

val priority_size_bytes : int
(** ~200 bytes, as the paper reports. *)

val try_propose :
  prover:Vrf.prover ->
  pk:string ->
  seed:string ->
  tau:float ->
  round:int ->
  prev_hash:string ->
  w:int ->
  total_weight:int ->
  priority_msg option
(** [None] when sortition does not select this user as a proposer. *)

val validate :
  vrf_scheme:Vrf.scheme ->
  vrf_pk_of:(string -> string) ->
  seed:string ->
  tau:float ->
  weight_of:(string -> int) ->
  total_weight:int ->
  priority_msg ->
  bool
(** Check the sortition proof and that the claimed priority really is
    the best sub-user priority. *)

val higher : priority_msg -> priority_msg -> bool
(** [higher a b]: does [a] beat [b]? Total order (ties broken on keys). *)

val next_seed : prover:Vrf.prover -> current_seed:string -> round:int -> string * string
(** The seed a round-[round] proposer embeds for round+1:
    VRF(seed_r || r+1) with its proof (section 5.2). *)

val verify_next_seed :
  vrf_scheme:Vrf.scheme ->
  vrf_pk:string ->
  current_seed:string ->
  round:int ->
  seed:string ->
  proof:string ->
  bool

val empty_hash : round:int -> prev_hash:string -> string
(** Hash of the designated empty block - BA*'s fallback value. *)
