(** Block certificates (section 8.3): the votes from the last BinaryBA*
    step (or the final step), enough for anyone to re-derive the
    consensus conclusion. *)

module Vote = Algorand_ba.Vote
module Params = Algorand_ba.Params

type t = {
  round : int;
  step : Vote.step;
  block_hash : string;
  votes : Vote.t list;
}

val make : round:int -> step:Vote.step -> block_hash:string -> votes:Vote.t list -> t
val size_bytes : t -> int

type error =
  [ `Wrong_round
  | `Mixed_steps
  | `Wrong_value
  | `Invalid_vote
  | `Duplicate_voter
  | `Insufficient_votes of int * float
  | `Too_many_steps ]

val pp_error : Format.formatter -> error -> unit

val validate : params:Params.t -> ctx:Vote.validation_ctx -> t -> (unit, error) result
(** Re-run Algorithm 6 on every vote and check the quorum
    (floor(T * tau) + 1). [`Too_many_steps] guards the certificate
    attack of section 8.3 (an adversary searching for a late step whose
    committee it controls). *)
