(** A minimal wallet over a node: sequential nonces, signed payments,
    and confirmation status per the paper's rule (a transaction is
    confirmed when its block, or a successor, reaches final consensus). *)

module Transaction = Algorand_ledger.Transaction

type t

val create : identity:Identity.t -> node:Node.t -> t
val address : t -> string
val balance : t -> int

val pay : t -> to_:string -> amount:int -> Transaction.t
(** Construct, sign and submit a payment; nonces are handed out
    sequentially. *)

type status = Pending | Tentative of int | Confirmed of int

val pp_status : Format.formatter -> status -> unit
val status : t -> Transaction.t -> status
