(** Experiment harness: builds a simulated deployment (users, genesis,
    WAN, gossip, workload, adversary), runs it, and audits safety. All
    section 10 experiments run through this module. *)

module Params = Algorand_ba.Params
module Engine = Algorand_sim.Engine
module Metrics = Algorand_sim.Metrics
module Genesis = Algorand_ledger.Genesis
module Gossip = Algorand_netsim.Gossip
module Network = Algorand_netsim.Network

type crypto = Real_crypto | Sim_crypto

type attack =
  | No_attack
  | Equivocate  (** section 10.4: equivocating proposers, double-voting committees *)
  | Partition of { from_ : float; until : float }
  | Targeted_dos of { fraction : float; from_ : float; until : float }
  | Delay_votes of { delay : float; from_ : float; until : float }

type config = {
  users : int;
  stake_per_user : int;
  stake_distribution : [ `Equal | `Linear ];
  params : Params.t;
  block_bytes : int;
  rounds : int;
  rng_seed : int;
  crypto : crypto;
  bandwidth_bps : float;
  fanout : int;
  malicious_fraction : float;
  attack : attack;
  tx_rate_per_s : float;
  max_sim_time : float;
  cpu_vote_verify_s : float;
  cpu_block_verify_s : float;
  recovery_enabled : bool;
  storage_shards : int;
  pipeline_final : bool;
}

val default : config

type t = {
  config : config;
  engine : Engine.t;
  metrics : Metrics.t;
  identities : Identity.t array;
  nodes : Node.t array;
  gossip : Message.t Gossip.t;
  network : Message.t Network.t;
  genesis : Genesis.t;
}

type safety_report = {
  agreement_rounds : int;
  forked_rounds : int list;  (** rounds with conflicting blocks across users *)
  double_final : int list;  (** rounds with two different final blocks: must be [] *)
}

type result = {
  harness : t;
  sim_time : float;
  events : int;
  safety : safety_report;
  completion : Algorand_sim.Stats.summary;
  final_rounds : int;
  tentative_rounds : int;
}

val build : config -> t
(** Construct the deployment without starting it (for custom drivers;
    see examples/payments.ml). *)

val install_workload : t -> unit
val audit_safety : t -> safety_report

val run : config -> result
(** Build, start every node, run to quiescence, audit. *)
