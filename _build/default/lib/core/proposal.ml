(* Block proposal (section 6): proposers are chosen by sortition with
   tau_proposer; each selected sub-user has priority H(vrf_hash || i),
   and the proposer's priority is the highest of them. Two message
   kinds are gossiped: a small priority announcement (fast), and the
   full block. Users adopt the highest-priority proposal they hear
   within the proposal window. *)

open Algorand_crypto
module Sortition = Algorand_sortition.Sortition
module Block = Algorand_ledger.Block

type priority_msg = {
  round : int;
  proposer_pk : string;  (** composite user key *)
  prev_hash : string;
  vrf_hash : string;
  vrf_proof : string;
  priority : string;  (** highest sub-user priority; self-certifying via the proof *)
}

let priority_size_bytes = 200
(* The paper reports ~200 bytes for the priority+proof message. *)

(* Try to become a proposer for this round. *)
let try_propose ~(prover : Vrf.prover) ~(pk : string) ~(seed : string) ~(tau : float)
    ~(round : int) ~(prev_hash : string) ~(w : int) ~(total_weight : int) :
    priority_msg option =
  let role = Algorand_ba.Vote.proposer_role ~round in
  let sel = Sortition.select ~prover ~seed ~tau ~role ~w ~total_weight in
  match Sortition.best_priority ~vrf_hash:sel.vrf_hash ~j:sel.j with
  | None -> None
  | Some priority ->
    Some { round; proposer_pk = pk; prev_hash; vrf_hash = sel.vrf_hash;
           vrf_proof = sel.vrf_proof; priority }

(* Validate a priority announcement: VRF proof, selection, and that the
   claimed priority really is the best sub-user priority. Returns false
   for forgeries. *)
let validate ~(vrf_scheme : Vrf.scheme) ~(vrf_pk_of : string -> string) ~(seed : string)
    ~(tau : float) ~(weight_of : string -> int) ~(total_weight : int) (m : priority_msg) :
    bool =
  let j =
    Sortition.verify ~scheme:vrf_scheme ~pk:(vrf_pk_of m.proposer_pk)
      ~vrf_hash:m.vrf_hash ~vrf_proof:m.vrf_proof ~seed ~tau
      ~role:(Algorand_ba.Vote.proposer_role ~round:m.round)
      ~w:(weight_of m.proposer_pk) ~total_weight
  in
  j > 0
  &&
  match Sortition.best_priority ~vrf_hash:m.vrf_hash ~j with
  | Some p -> String.equal p m.priority
  | None -> false

(* Higher priority wins; ties (nearly impossible) break on proposer key
   so all nodes agree. *)
let higher (a : priority_msg) (b : priority_msg) : bool =
  let c = String.compare a.priority b.priority in
  c > 0 || (c = 0 && String.compare a.proposer_pk b.proposer_pk > 0)

(* The seed a proposer embeds in its block for the next round
   (section 5.2): VRF(seed_r || r+1), proven against the proposer's key. *)
let next_seed ~(prover : Vrf.prover) ~(current_seed : string) ~(round : int) :
    string * string =
  prover.prove (Printf.sprintf "seed|%s|%d" current_seed (round + 1))

let verify_next_seed ~(vrf_scheme : Vrf.scheme) ~(vrf_pk : string)
    ~(current_seed : string) ~(round : int) ~(seed : string) ~(proof : string) : bool =
  match
    vrf_scheme.verify ~pk:vrf_pk
      ~input:(Printf.sprintf "seed|%s|%d" current_seed (round + 1))
      ~proof
  with
  | Some h -> String.equal h seed
  | None -> false

(* Hash of the designated empty block for a round (the value BA* falls
   back to). *)
let empty_hash ~(round : int) ~(prev_hash : string) : string =
  Block.hash (Block.empty ~round ~prev_hash)
