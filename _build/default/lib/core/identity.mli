(** User key material. The paper gives each user one public key for
    both signing and VRF evaluation; our schemes have separate keys, so
    the user-visible key is the 64-byte concatenation
    [sig_pk || vrf_pk]. Balances (sortition weights) are keyed by it. *)

open Algorand_crypto

val sig_pk_length : int
val vrf_pk_length : int
val pk_length : int

type t = {
  pk : string;  (** composite public key *)
  signer : Signature_scheme.signer;
  prover : Vrf.prover;
}

val generate : sig_scheme:Signature_scheme.scheme -> vrf_scheme:Vrf.scheme -> seed:string -> t

val sig_pk : string -> string
(** Signing half of a composite key. *)

val vrf_pk : string -> string
val short : string -> string
(** Short hex prefix for logs. *)
