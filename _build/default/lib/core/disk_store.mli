(** File-backed block/certificate storage (two Codec-encoded files per
    round). Loading returns an *unvalidated* history; feed it to
    {!Catchup.replay}, which re-checks every certificate, so a
    tampered store is rejected rather than trusted. *)

val save : string -> Catchup.item list -> unit
(** [save dir items] writes each round's block and certificate under
    [dir] (created if needed). *)

val stored_rounds : string -> int list

type load_error = [ `Missing of int | `Corrupt of int ]

val pp_load_error : Format.formatter -> load_error -> unit

val load : string -> up_to_round:int -> (Catchup.item list, load_error) result

val size_bytes : string -> int
(** Total bytes on disk - the measured form of the section 10.3
    storage-cost accounting. *)
