lib/core/lightclient.ml: Algorand_ba Algorand_crypto Algorand_ledger Certificate Format String
