lib/core/proposal.mli: Algorand_crypto Vrf
