lib/core/wallet.ml: Algorand_ledger Format Identity List Node String
