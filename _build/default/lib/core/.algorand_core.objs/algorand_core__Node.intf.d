lib/core/node.mli: Algorand_ba Algorand_crypto Algorand_ledger Algorand_netsim Algorand_sim Certificate Identity Message
