lib/core/harness.mli: Algorand_ba Algorand_ledger Algorand_netsim Algorand_sim Identity Message Node
