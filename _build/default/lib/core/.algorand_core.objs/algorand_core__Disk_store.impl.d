lib/core/disk_store.ml: Algorand_ledger Array Catchup Codec Filename Format List Printf Sys Unix
