lib/core/proposal.ml: Algorand_ba Algorand_crypto Algorand_ledger Algorand_sortition Printf String Vrf
