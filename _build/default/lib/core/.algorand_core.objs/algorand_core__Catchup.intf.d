lib/core/catchup.mli: Algorand_ba Algorand_crypto Algorand_ledger Certificate Format Node
