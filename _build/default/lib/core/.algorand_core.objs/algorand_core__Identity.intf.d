lib/core/identity.mli: Algorand_crypto Signature_scheme Vrf
