lib/core/disk_store.mli: Catchup Format
