lib/core/message.mli: Algorand_ba Algorand_ledger Proposal
