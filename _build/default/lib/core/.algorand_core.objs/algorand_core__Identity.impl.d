lib/core/identity.ml: Algorand_crypto Hex Signature_scheme String Vrf
