lib/core/message.ml: Algorand_ba Algorand_crypto Algorand_ledger Hex List Printf Proposal
