lib/core/catchup.ml: Algorand_ba Algorand_crypto Algorand_ledger Certificate Format Identity List Node String
