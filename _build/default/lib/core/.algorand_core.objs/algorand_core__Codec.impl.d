lib/core/codec.ml: Algorand_ba Algorand_ledger Certificate List Message Option Proposal String
