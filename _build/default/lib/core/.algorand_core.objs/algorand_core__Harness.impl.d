lib/core/harness.ml: Algorand_ba Algorand_crypto Algorand_ledger Algorand_netsim Algorand_sim Array Float Hashtbl Identity List Message Node Printf Signature_scheme Vrf
