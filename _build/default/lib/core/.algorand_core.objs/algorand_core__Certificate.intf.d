lib/core/certificate.mli: Algorand_ba Format
