lib/core/wallet.mli: Algorand_ledger Format Identity Node
