lib/core/lightclient.mli: Algorand_ba Algorand_crypto Algorand_ledger Certificate Format
