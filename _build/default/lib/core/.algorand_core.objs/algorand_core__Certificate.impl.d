lib/core/certificate.ml: Algorand_ba Format Hashtbl List String
