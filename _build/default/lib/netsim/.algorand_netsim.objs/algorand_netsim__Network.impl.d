lib/netsim/network.ml: Algorand_sim Array Engine Float Topology
