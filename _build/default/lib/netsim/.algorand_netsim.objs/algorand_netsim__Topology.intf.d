lib/netsim/topology.mli: Algorand_sim Rng
