lib/netsim/network.mli: Algorand_sim Engine Topology
