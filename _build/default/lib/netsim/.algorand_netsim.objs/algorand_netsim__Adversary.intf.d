lib/netsim/adversary.mli: Algorand_sim Network
