lib/netsim/gossip.ml: Algorand_sim Array Hashtbl List Network Rng
