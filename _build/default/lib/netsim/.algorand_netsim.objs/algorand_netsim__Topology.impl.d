lib/netsim/topology.ml: Algorand_sim Array Float Rng
