lib/netsim/gossip.mli: Algorand_sim Network Rng
