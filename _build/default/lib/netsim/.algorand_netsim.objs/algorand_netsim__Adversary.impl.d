lib/netsim/adversary.ml: Algorand_sim Network
