(* The paper's network model (section 10): each machine is assigned to
   one of 20 major cities; inter-city latency follows measured ping
   times; latency within a city is negligible.

   We derive the latency matrix from city coordinates instead of
   transcribing a 20x20 table: one-way latency = great-circle distance
   at 2/3 c with a 30% path-stretch factor plus a small fixed hop cost.
   This tracks public inter-city ping statistics (e.g. WonderNetwork)
   to within tens of percent, which is all the experiments' *shape*
   depends on. *)

open Algorand_sim

type city = { name : string; lat : float; lon : float }

let cities : city array =
  [|
    { name = "New York"; lat = 40.7; lon = -74.0 };
    { name = "Los Angeles"; lat = 34.1; lon = -118.2 };
    { name = "Chicago"; lat = 41.9; lon = -87.6 };
    { name = "Toronto"; lat = 43.7; lon = -79.4 };
    { name = "Sao Paulo"; lat = -23.6; lon = -46.6 };
    { name = "London"; lat = 51.5; lon = -0.1 };
    { name = "Paris"; lat = 48.9; lon = 2.4 };
    { name = "Frankfurt"; lat = 50.1; lon = 8.7 };
    { name = "Amsterdam"; lat = 52.4; lon = 4.9 };
    { name = "Stockholm"; lat = 59.3; lon = 18.1 };
    { name = "Dublin"; lat = 53.3; lon = -6.3 };
    { name = "Moscow"; lat = 55.8; lon = 37.6 };
    { name = "Johannesburg"; lat = -26.2; lon = 28.0 };
    { name = "Dubai"; lat = 25.2; lon = 55.3 };
    { name = "Mumbai"; lat = 19.1; lon = 72.9 };
    { name = "Singapore"; lat = 1.35; lon = 103.8 };
    { name = "Hong Kong"; lat = 22.3; lon = 114.2 };
    { name = "Seoul"; lat = 37.6; lon = 127.0 };
    { name = "Tokyo"; lat = 35.7; lon = 139.7 };
    { name = "Sydney"; lat = -33.9; lon = 151.2 };
  |]

let num_cities = Array.length cities

let earth_radius_km = 6371.0

let great_circle_km (a : city) (b : city) : float =
  let rad d = d *. Float.pi /. 180.0 in
  let dlat = rad (b.lat -. a.lat) and dlon = rad (b.lon -. a.lon) in
  let h =
    (sin (dlat /. 2.0) ** 2.0)
    +. (cos (rad a.lat) *. cos (rad b.lat) *. (sin (dlon /. 2.0) ** 2.0))
  in
  2.0 *. earth_radius_km *. asin (sqrt (min 1.0 h))

(* One-way latency in seconds between two cities. *)
let base_latency_s =
  let speed_km_per_s = 200_000.0 (* ~2/3 c in fiber *) in
  let stretch = 1.3 and hop_cost = 0.002 in
  let m = Array.make_matrix num_cities num_cities 0.0 in
  for i = 0 to num_cities - 1 do
    for j = 0 to num_cities - 1 do
      if i <> j then
        m.(i).(j) <-
          (great_circle_km cities.(i) cities.(j) /. speed_km_per_s *. stretch) +. hop_cost
    done
  done;
  m

type t = {
  node_city : int array;  (** city index of each node *)
  jitter_frac : float;  (** multiplicative jitter amplitude *)
  rng : Rng.t;
}

let create ?(jitter_frac = 0.15) ~(nodes : int) (rng : Rng.t) : t =
  { node_city = Array.init nodes (fun _ -> Rng.int rng num_cities); jitter_frac; rng }

let city_of (t : t) (node : int) : string = cities.(t.node_city.(node)).name

(* A fresh one-way latency sample between two nodes. *)
let latency (t : t) ~(src : int) ~(dst : int) : float =
  let base = base_latency_s.(t.node_city.(src)).(t.node_city.(dst)) in
  let jitter = Rng.float t.rng (t.jitter_frac *. (base +. 0.001)) in
  base +. jitter +. 0.0005

let nodes (t : t) : int = Array.length t.node_city
