(** The paper's WAN model (section 10): nodes assigned to 20 major
    cities; inter-city latency derived from great-circle distance at
    2/3 c with path stretch, tracking public ping statistics. *)

open Algorand_sim

type t

val num_cities : int

val create : ?jitter_frac:float -> nodes:int -> Rng.t -> t
(** Assign [nodes] uniformly to cities; [jitter_frac] is the
    multiplicative latency jitter amplitude (default 0.15). *)

val city_of : t -> int -> string

val latency : t -> src:int -> dst:int -> float
(** A fresh one-way latency sample in seconds (includes jitter). *)

val nodes : t -> int
