(** Fixed-server BFT cryptocurrency baseline (HoneyBadger-style,
    section 2): leader block distribution over a capped uplink plus two
    all-to-all vote phases among n configured servers. Captures the two
    drawbacks the paper contrasts against: quadratic server traffic and
    total loss of liveness when a third of the *known* servers is
    DoSed. *)

type config = {
  servers : int;
  block_bytes : int;
  bandwidth_bps : float;
  wan_latency_s : float;
  vote_bytes : int;
  rounds : int;
  dos_servers : int;
  rng_seed : int;
}

val honey_badger_default : config
(** 104 servers, 10 MB blocks - the configuration the paper quotes
    (~5 minute latency, ~200 KB/s). *)

type result = {
  committed_rounds : int;
  halted : bool;
  mean_round_latency_s : float;
  throughput_bytes_per_hour : float;
  bytes_per_server_per_round : float;
}

val quorum : config -> int
val run : config -> result
