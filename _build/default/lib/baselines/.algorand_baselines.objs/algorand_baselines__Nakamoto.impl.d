lib/baselines/nakamoto.ml: Algorand_sim Array Engine Hashtbl Rng
