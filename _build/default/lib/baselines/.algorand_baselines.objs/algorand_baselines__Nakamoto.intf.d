lib/baselines/nakamoto.mli:
