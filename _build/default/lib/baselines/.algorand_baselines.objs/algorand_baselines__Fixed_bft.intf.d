lib/baselines/fixed_bft.mli:
