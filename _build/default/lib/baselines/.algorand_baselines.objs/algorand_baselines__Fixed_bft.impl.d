lib/baselines/fixed_bft.ml: Algorand_sim List Rng
