(* A Nakamoto-consensus (Bitcoin-style proof-of-work) simulator, the
   baseline for the paper's throughput comparison (section 10.2:
   "Bitcoin commits a 1 MByte block every 10 minutes ... Algorand
   achieves 125x Bitcoin's throughput") and for the fork/confirmation
   trade-off discussed in sections 1-2.

   Model: miners find blocks as independent Poisson processes (total
   rate = 1/mean_block_interval, split by hash power) and always mine
   on the longest chain they have *seen*; a found block reaches other
   miners after a propagation delay. Two blocks found within one
   propagation window fork the chain; the shorter branch is eventually
   orphaned. A transaction is confirmed once its block is
   [confirmation_depth] blocks deep on the main chain. *)

open Algorand_sim

type config = {
  miners : int;
  mean_block_interval_s : float;
  block_bytes : int;
  propagation_s : float;  (** time for a block to reach other miners *)
  confirmation_depth : int;  (** 6 for Bitcoin *)
  duration_s : float;
  rng_seed : int;
}

let bitcoin_default =
  {
    miners = 30;
    mean_block_interval_s = 600.0;
    block_bytes = 1_000_000;
    propagation_s = 15.0;
    confirmation_depth = 6;
    duration_s = 60.0 *. 86_400.0 (* 60 simulated days *);
    rng_seed = 7;
  }

type block = {
  id : int;
  parent : int;  (** -1 for genesis *)
  height : int;
  found_at : float;
  miner : int;
}

type result = {
  blocks_found : int;
  main_chain_length : int;
  orphans : int;
  orphan_rate : float;
  throughput_bytes_per_hour : float;
      (** bytes on the main chain per hour of simulated time *)
  mean_confirmation_latency_s : float;
      (** block creation -> buried confirmation_depth deep *)
  mean_interval_s : float;
}

let run (config : config) : result =
  let engine = Engine.create () in
  let rng = Rng.create config.rng_seed in
  let genesis = { id = 0; parent = -1; height = 0; found_at = 0.0; miner = -1 } in
  let blocks : (int, block) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace blocks 0 genesis;
  let next_id = ref 1 in
  (* Each miner's view: the highest block it has seen. *)
  let tip = Array.make config.miners genesis in
  let per_miner_mean = config.mean_block_interval_s *. float_of_int config.miners in
  let find_block (m : int) : unit =
    if Engine.now engine < config.duration_s then begin
      let parent = tip.(m) in
      let b =
        {
          id = !next_id;
          parent = parent.id;
          height = parent.height + 1;
          found_at = Engine.now engine;
          miner = m;
        }
      in
      incr next_id;
      Hashtbl.replace blocks b.id b;
      tip.(m) <- b;
      (* Propagate: others adopt it iff it is strictly higher than what
         they know (the longest-chain rule). *)
      for other = 0 to config.miners - 1 do
        if other <> m then
          Engine.schedule engine ~delay:(Rng.float rng (2.0 *. config.propagation_s))
            (fun () -> if b.height > tip.(other).height then tip.(other) <- b)
      done
    end
  in
  let rec mine (m : int) () : unit =
    if Engine.now engine < config.duration_s then begin
      find_block m;
      Engine.schedule engine ~delay:(Rng.exponential rng ~mean:per_miner_mean) (mine m)
    end
  in
  for m = 0 to config.miners - 1 do
    Engine.schedule engine ~delay:(Rng.exponential rng ~mean:per_miner_mean) (mine m)
  done;
  ignore (Engine.run engine ~until:(config.duration_s +. (10.0 *. config.propagation_s)) ());
  (* The main chain is the ancestry of the highest tip. *)
  let best = Array.fold_left (fun a b -> if b.height > a.height then b else a) genesis tip in
  let on_main = Hashtbl.create 1024 in
  let rec walk (b : block) =
    Hashtbl.replace on_main b.id b;
    if b.parent >= 0 then walk (Hashtbl.find blocks b.parent)
  in
  walk best;
  let blocks_found = !next_id - 1 in
  let main_chain_length = best.height in
  let orphans = blocks_found - main_chain_length in
  (* Confirmation latency: for each main-chain block at height h, the
     time until the main-chain block at h + depth was found. *)
  let by_height = Hashtbl.create 1024 in
  Hashtbl.iter (fun _ b -> Hashtbl.replace by_height b.height b) on_main;
  let lat_sum = ref 0.0 and lat_n = ref 0 in
  for h = 1 to main_chain_length - config.confirmation_depth do
    match (Hashtbl.find_opt by_height h, Hashtbl.find_opt by_height (h + config.confirmation_depth)) with
    | Some b, Some deep ->
      lat_sum := !lat_sum +. (deep.found_at -. b.found_at);
      incr lat_n
    | _ -> ()
  done;
  let hours = config.duration_s /. 3600.0 in
  {
    blocks_found;
    main_chain_length;
    orphans;
    orphan_rate =
      (if blocks_found = 0 then 0.0 else float_of_int orphans /. float_of_int blocks_found);
    throughput_bytes_per_hour =
      float_of_int main_chain_length *. float_of_int config.block_bytes /. hours;
    mean_confirmation_latency_s =
      (if !lat_n = 0 then nan else !lat_sum /. float_of_int !lat_n);
    mean_interval_s =
      (if main_chain_length = 0 then nan else config.duration_s /. float_of_int main_chain_length);
  }
