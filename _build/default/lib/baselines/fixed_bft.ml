(* A fixed-server BFT cryptocurrency baseline, modeling the
   HoneyBadger-style design the paper compares against (section 2): a
   set of n servers chosen at configuration time runs Byzantine
   agreement among themselves; clients submit transactions to the
   servers.

   The model captures the two properties the paper criticizes:

   - communication is all-to-all among the fixed servers (O(n^2) votes
     per round, leader block distribution bounded by its uplink), so
     throughput/latency degrade as the committee grows;
   - the servers are *fixed and known*, so an adversary that DoSes
     more than a third of them halts the system outright - unlike
     Algorand, where each step's committee is fresh and secret until
     it speaks.

   Rounds: a leader broadcasts a block (serialized through its uplink),
   then two all-to-all vote phases; the round commits when more than
   2/3 of servers are responsive. *)

open Algorand_sim

type config = {
  servers : int;
  block_bytes : int;
  bandwidth_bps : float;
  wan_latency_s : float;  (** typical one-way server-to-server latency *)
  vote_bytes : int;
  rounds : int;
  dos_servers : int;  (** servers silenced by a targeted attack *)
  rng_seed : int;
}

let honey_badger_default =
  {
    servers = 104;
    block_bytes = 10_000_000;
    bandwidth_bps = 20e6;
    wan_latency_s = 0.15;
    vote_bytes = 300;
    rounds = 5;
    dos_servers = 0;
    rng_seed = 3;
  }

type result = {
  committed_rounds : int;
  halted : bool;  (** the DoS silenced a blocking fraction of servers *)
  mean_round_latency_s : float;
  throughput_bytes_per_hour : float;
  bytes_per_server_per_round : float;
}

let quorum (c : config) : int = (2 * c.servers / 3) + 1

let run (c : config) : result =
  let responsive = c.servers - c.dos_servers in
  if responsive < quorum c then
    {
      committed_rounds = 0;
      halted = true;
      mean_round_latency_s = infinity;
      throughput_bytes_per_hour = 0.0;
      bytes_per_server_per_round = 0.0;
    }
  else begin
    let rng = Rng.create c.rng_seed in
    (* Leader block distribution: the leader pushes the block to every
       other server through one capped uplink (sequentially), each copy
       then needs a WAN traversal. *)
    let tx_time = float_of_int (8 * c.block_bytes) /. c.bandwidth_bps in
    let round_latency _round =
      let distribution = (float_of_int (responsive - 1) *. tx_time) +. c.wan_latency_s in
      (* Two vote phases; each ends when the quorum-th vote arrives.
         Vote transmission is cheap; latency dominated by the WAN, with
         jitter making the quorum-th arrival a near-max order
         statistic. *)
      let phase () =
        let slowest = ref 0.0 in
        for _ = 1 to quorum c do
          let l = c.wan_latency_s *. (0.8 +. Rng.float rng 0.6) in
          if l > !slowest then slowest := l
        done;
        !slowest
      in
      distribution +. phase () +. phase ()
    in
    let latencies = List.init c.rounds round_latency in
    let mean = List.fold_left ( +. ) 0.0 latencies /. float_of_int c.rounds in
    (* Per-server traffic per round: the block plus two all-to-all vote
       phases. *)
    let bytes_per_server =
      float_of_int c.block_bytes
      +. (2.0 *. float_of_int (responsive * c.vote_bytes))
    in
    {
      committed_rounds = c.rounds;
      halted = false;
      mean_round_latency_s = mean;
      throughput_bytes_per_hour = float_of_int c.block_bytes *. (3600.0 /. mean);
      bytes_per_server_per_round = bytes_per_server;
    }
  end
