(** Nakamoto-consensus (Bitcoin-style proof-of-work) simulator: the
    baseline for the paper's throughput and confirmation-latency
    comparisons (section 10.2) and the fork-rate trade-off of
    sections 1-2. *)

type config = {
  miners : int;
  mean_block_interval_s : float;
  block_bytes : int;
  propagation_s : float;
  confirmation_depth : int;  (** 6 for Bitcoin *)
  duration_s : float;
  rng_seed : int;
}

val bitcoin_default : config

type block = {
  id : int;
  parent : int;
  height : int;
  found_at : float;
  miner : int;
}

type result = {
  blocks_found : int;
  main_chain_length : int;
  orphans : int;
  orphan_rate : float;
  throughput_bytes_per_hour : float;
  mean_confirmation_latency_s : float;
  mean_interval_s : float;
}

val run : config -> result
