(** The common coin (Algorithm 9): least-significant bit of the lowest
    H(sorthash || j) across a step's votes. *)

val sub_user_hash : sorthash:string -> j:int -> string

val flip : (string * int) list -> int
(** [flip messages] with [(sorthash, votes)] pairs; 0 when no votes
    were observed at all. *)
