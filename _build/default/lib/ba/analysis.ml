(* Analytical reproductions of the technical report's appendices, which
   the paper leans on for its parameter choices:

   - Appendix B.1: tau_proposer = 26 gives at least one and at most ~70
     proposers with probability ~1 - 1e-11;
   - Appendix C.3: with strong synchrony BA-star finishes in 4 steps in
     the common case and an expected ~13 steps against the worst-case
     adversary, and exceeding MaxSteps = 150 has negligible probability;
   - Appendix A: the number of blocks needed in a strongly synchronous
     period so at least one is honest is logarithmic in 1/F;
   - Section 8.3: the probability that the adversary controls a whole
     late-step committee (the fake-certificate attack) is negligible.

   Committee selection counts are Poisson in the large-population limit
   (see Committee). *)

module Poisson = Algorand_sortition.Poisson

(* ------------------------------------------------------------------ *)
(* Appendix B.1: block-proposer count bounds.                          *)
(* ------------------------------------------------------------------ *)

(* P(no proposer at all) for expected count tau. *)
let no_proposer_probability ~(tau : float) : float = exp (-.tau)

(* P(more than [bound] proposers). *)
let too_many_proposers_probability ~(tau : float) ~(bound : int) : float =
  Poisson.sf ~k:bound ~mean:tau

(* Combined failure: zero proposers or more than [bound]. *)
let proposer_failure_probability ~(tau : float) ~(bound : int) : float =
  no_proposer_probability ~tau +. too_many_proposers_probability ~tau ~bound

(* ------------------------------------------------------------------ *)
(* Appendix C.3: BA-star step counts.                                  *)
(* ------------------------------------------------------------------ *)

(* Common case (strong synchrony, honest highest-priority proposer):
   two reduction steps, one BinaryBA* step, plus the final step. *)
let common_case_steps : int = 4

(* Worst case: a malicious highest-priority proposer colluding with
   committee members can stall each three-step BinaryBA* period until
   the common coin rescues it. A period flips a coin whose value is
   common and unpredictable when the lowest sortition hash is honest
   (probability h), and the coin favors consensus with probability 1/2,
   so each period ends the loop with probability at least h/2. *)
let period_success_probability ~(h : float) : float = h /. 2.0

(* Expected BinaryBA* steps: two steps of the first (possibly
   adversarially split) period, then three steps per extra period,
   geometric with success h/2. *)
let expected_binary_steps ~(h : float) : float =
  let p = period_success_probability ~h in
  2.0 +. (3.0 /. p)

(* Expected total interactive steps from the start of Reduction. *)
let expected_worst_case_steps ~(h : float) : float = 2.0 +. expected_binary_steps ~h

(* P(BinaryBA* exceeds max_steps): no period succeeded. *)
let max_steps_overflow_probability ~(h : float) ~(max_steps : int) : float =
  let periods = max 0 ((max_steps - 2) / 3) in
  (1.0 -. period_success_probability ~h) ** float_of_int periods

(* ------------------------------------------------------------------ *)
(* Appendix A: honest-seed block count.                                *)
(* ------------------------------------------------------------------ *)

(* Smallest number of blocks agreed during a strongly synchronous
   period such that at least one was proposed by an honest user with
   probability 1 - failure: (1-h)^B <= failure. Logarithmic in
   1/failure, as the paper notes. *)
let blocks_for_honest_seed ~(h : float) ~(failure : float) : int =
  if h <= 0.0 || h >= 1.0 then invalid_arg "Analysis.blocks_for_honest_seed";
  if failure >= 1.0 then 0
  else int_of_float (ceil (log failure /. log (1.0 -. h)))

(* ------------------------------------------------------------------ *)
(* Section 8.3: the fake-certificate attack.                           *)
(* ------------------------------------------------------------------ *)

(* Chernoff upper bound on P(X >= k) for X ~ Poisson(mean), valid for
   k > mean; returned as log2 so values far below float underflow are
   still representable. *)
let log2_poisson_tail_bound ~(mean : float) ~(k : float) : float =
  if k <= mean then 0.0
  else (k -. mean -. (k *. log (k /. mean))) /. log 2.0

(* log2 of (a bound on) the probability that the adversary alone
   gathers a winning vote count in one step: its committee seats are
   Poisson((1-h) tau) and it needs more than T*tau of them. *)
let log2_certificate_attack_per_step ~(h : float) ~(tau : float) ~(t : float) : float =
  log2_poisson_tail_bound ~mean:((1.0 -. h) *. tau) ~k:(t *. tau)

(* Union bound over every allowed step. *)
let log2_certificate_attack ~(h : float) ~(tau : float) ~(t : float) ~(max_steps : int) :
    float =
  log2_certificate_attack_per_step ~h ~tau ~t +. (log (float_of_int max_steps) /. log 2.0)
