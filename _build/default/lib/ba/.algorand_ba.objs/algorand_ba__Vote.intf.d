lib/ba/vote.mli: Algorand_crypto Signature_scheme Vrf
