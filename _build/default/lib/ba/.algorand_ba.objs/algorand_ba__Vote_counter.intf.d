lib/ba/vote_counter.mli:
