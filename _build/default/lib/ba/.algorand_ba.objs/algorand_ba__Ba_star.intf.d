lib/ba/ba_star.mli: Params Vote
