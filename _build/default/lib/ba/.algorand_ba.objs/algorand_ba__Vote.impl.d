lib/ba/vote.ml: Algorand_crypto Algorand_sortition Printf Sha256 Signature_scheme String Vrf
