lib/ba/vote_counter.ml: Hashtbl
