lib/ba/analysis.ml: Algorand_sortition
