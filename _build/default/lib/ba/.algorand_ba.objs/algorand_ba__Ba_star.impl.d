lib/ba/ba_star.ml: Common_coin Hashtbl List Params String Vote Vote_counter
