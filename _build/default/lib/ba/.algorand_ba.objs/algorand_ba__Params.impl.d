lib/ba/params.ml: Float
