lib/ba/analysis.mli:
