lib/ba/common_coin.ml: Algorand_crypto Char List Sha256 String
