lib/ba/common_coin.mli:
