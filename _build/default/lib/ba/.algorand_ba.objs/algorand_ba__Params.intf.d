lib/ba/params.mli:
