(* The common coin (Algorithm 9): the least-significant bit of the
   lowest H(sorthash || j) over all votes observed in a step. Because
   sortition hashes are pseudo-random and the lowest one belongs to an
   honest member with probability h, enough users observe the same bit
   to break adversarial vote-scheduling (section 7.4, "getting
   unstuck").

   The paper's loop reads [for 1 <= j < votes]; taken literally a
   single-vote member would contribute nothing and a w-vote member only
   w-1 hashes. We follow the evident intent (each of the j selected
   sub-users contributes) and iterate j = 1..votes. *)

open Algorand_crypto

let sub_user_hash ~(sorthash : string) ~(j : int) : string =
  Sha256.digest_concat [ sorthash; string_of_int j ]

let flip (messages : (string * int) list) : int =
  let min_hash = ref None in
  List.iter
    (fun (sorthash, votes) ->
      for j = 1 to votes do
        let h = sub_user_hash ~sorthash ~j in
        match !min_hash with
        | None -> min_hash := Some h
        | Some m -> if String.compare h m < 0 then min_hash := Some h
      done)
    messages;
  match !min_hash with
  | None -> 0 (* no votes at all: deterministic fallback *)
  | Some h -> Char.code h.[String.length h - 1] land 1
