(** Protocol parameters (Figure 4). *)

type variant =
  | Vote_next_three  (** pseudocode (Algorithm 8): deciders vote the next three steps *)
  | Look_back
      (** the authors' implementation (section 9): laggards consult the
          last three steps' counters on a timeout; "equivalent results" *)

type t = {
  honest_fraction : float;  (** h: assumed fraction of honest weighted users *)
  seed_refresh_interval : int;  (** R: rounds between sortition-seed refreshes *)
  tau_proposer : float;  (** expected number of block proposers *)
  tau_step : float;  (** expected committee size for BA* steps *)
  t_step : float;  (** vote threshold fraction for BA* steps *)
  tau_final : float;  (** expected committee size for the final step *)
  t_final : float;  (** vote threshold fraction for the final step *)
  max_steps : int;  (** maximum BinaryBA* steps before hanging *)
  lambda_priority : float;  (** s: time to gossip sortition proofs *)
  lambda_block : float;  (** s: timeout for receiving a block *)
  lambda_step : float;  (** s: timeout for each BA* step *)
  lambda_stepvar : float;  (** s: estimated variance of BA* completion *)
  lookback_b : float;  (** s: weak-synchrony period length b (section 5.3) *)
  recovery_interval : float;  (** s: fork-recovery cadence (section 8.2) *)
  ba_variant : variant;  (** section 9 carry-forward formulation *)
}

val paper : t
(** The values of Figure 4. *)

val scaled : factor:float -> t
(** Committee sizes scaled by [factor], thresholds unchanged - for
    small simulated populations. *)

val step_threshold : t -> float
(** T_step * tau_step: a value wins a step with strictly more votes. *)

val final_threshold : t -> float

val certificate_quorum : t -> int
(** floor(T_step * tau_step) + 1 (section 8.3). *)
