(** Analytical reproductions of the technical report's appendices
    (A, B.1, C.3) and the section 8.3 certificate-attack bound. *)

val no_proposer_probability : tau:float -> float
val too_many_proposers_probability : tau:float -> bound:int -> float

val proposer_failure_probability : tau:float -> bound:int -> float
(** Appendix B.1: P(zero proposers or more than [bound]) at expected
    proposer count [tau]. The paper's tau = 26, bound = 70 gives
    ~1e-11. *)

val common_case_steps : int
(** 4: two reduction steps, one BinaryBA* step, the final step. *)

val period_success_probability : h:float -> float
(** Each 3-step BinaryBA* period escapes the worst-case adversary with
    probability at least h/2 (honest lowest hash x correct coin). *)

val expected_binary_steps : h:float -> float

val expected_worst_case_steps : h:float -> float
(** Appendix C.3: ~13 at h = 0.8, matching the paper's "expected 13
    steps" worst case. *)

val max_steps_overflow_probability : h:float -> max_steps:int -> float
(** P(BinaryBA* runs past [max_steps]) under strong synchrony. *)

val blocks_for_honest_seed : h:float -> failure:float -> int
(** Appendix A: blocks needed in a strongly synchronous period for at
    least one honest proposer, logarithmic in 1/failure. *)

val log2_poisson_tail_bound : mean:float -> k:float -> float
(** Chernoff bound on log2 P(X >= k), X ~ Poisson(mean), for k > mean. *)

val log2_certificate_attack_per_step : h:float -> tau:float -> t:float -> float

val log2_certificate_attack :
  h:float -> tau:float -> t:float -> max_steps:int -> float
(** Section 8.3: log2 probability (bound) that an adversary can forge a
    certificate at *some* allowed step. For tau > 1000 the paper quotes
    below 2^-166 per step; this bound is far smaller. *)
