(* Protocol parameters (Figure 4 of the paper). [paper] is the
   implementation's configuration; [scaled] shrinks committee sizes for
   small simulated populations while keeping the vote-fraction
   thresholds, so protocol dynamics (who crosses which threshold when)
   are preserved at laptop scale. Shrinking committees raises the
   violation probability - acceptable in a deterministic simulation,
   quantified by Committee.violation_probability and reported in
   EXPERIMENTS.md. *)

(* Section 9's two equivalent formulations of BinaryBA*'s carry-forward
   logic; the test suite checks the variants decide identically. *)
type variant =
  | Vote_next_three  (** pseudocode: deciders vote the next three steps *)
  | Look_back  (** implementation: laggards consult the last three steps *)

type t = {
  honest_fraction : float;  (** h: assumed fraction of honest weighted users *)
  seed_refresh_interval : int;  (** R: rounds between sortition seed refreshes *)
  tau_proposer : float;  (** expected number of block proposers *)
  tau_step : float;  (** expected committee size for BA* steps *)
  t_step : float;  (** vote threshold fraction for BA* steps *)
  tau_final : float;  (** expected committee size for the final step *)
  t_final : float;  (** vote threshold fraction for the final step *)
  max_steps : int;  (** maximum BinaryBA* steps before hanging *)
  lambda_priority : float;  (** s: time to gossip sortition proofs *)
  lambda_block : float;  (** s: timeout for receiving a block *)
  lambda_step : float;  (** s: timeout for each BA* step *)
  lambda_stepvar : float;  (** s: estimated variance of BA* completion *)
  lookback_b : float;  (** s: weak-synchrony period length b (section 5.3) *)
  recovery_interval : float;  (** s: how often the fork-recovery protocol kicks off *)
  ba_variant : variant;  (** section 9 carry-forward formulation *)
}

let paper : t =
  {
    honest_fraction = 0.80;
    seed_refresh_interval = 1_000;
    tau_proposer = 26.0;
    tau_step = 2_000.0;
    t_step = 0.685;
    tau_final = 10_000.0;
    t_final = 0.74;
    max_steps = 150;
    lambda_priority = 5.0;
    lambda_block = 60.0;
    lambda_step = 20.0;
    lambda_stepvar = 5.0;
    lookback_b = 86_400.0;
    recovery_interval = 3_600.0;
    ba_variant = Vote_next_three;
  }

(* Committee sizes scaled by [factor]; thresholds unchanged. *)
let scaled ~(factor : float) : t =
  {
    paper with
    tau_proposer = Float.max 3.0 (paper.tau_proposer *. factor);
    tau_step = Float.max 8.0 (paper.tau_step *. factor);
    tau_final = Float.max 12.0 (paper.tau_final *. factor);
  }

(* Vote-count thresholds: a value wins a step once it has strictly more
   than T * tau weighted votes (section 7.2). *)
let step_threshold (p : t) : float = p.t_step *. p.tau_step
let final_threshold (p : t) : float = p.t_final *. p.tau_final

(* Certificate quorum (section 8.3): floor(T_step * tau_step) + 1. *)
let certificate_quorum (p : t) : int = int_of_float (step_threshold p) + 1
