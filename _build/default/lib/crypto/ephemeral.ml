(* Forward-secure ephemeral signing keys (the paper's section 11
   "forward security" direction).

   Committee members reveal their identity the moment they send a vote;
   an attacker who later corrupts enough *past* committee members could
   extract their long-term keys and forge a certificate for an old
   round, creating a fork retroactively. The fix sketched by the paper:
   sign each message with a one-time key that is *deleted* before the
   message is sent, having committed to the whole sequence of one-time
   keys in advance.

   This module implements that scheme:
   - [create] derives [epochs] one-time key pairs from a master seed
     and publishes a Merkle commitment over the one-time public keys;
   - [sign] signs with the epoch's key and attaches the public key and
     its Merkle inclusion proof;
   - [retire] deletes every signer up to an epoch - once retired, not
     even the key's owner can produce another signature for it;
   - [verify] checks the inclusion proof against the commitment, then
     the one-time signature.

   An epoch here is abstract; Algorand would use one epoch per
   (round, step). *)

type signed = {
  epoch : int;
  one_time_pk : string;
  proof : Merkle.proof;
  signature : string;
}

type t = {
  scheme : Signature_scheme.scheme;
  signers : Signature_scheme.signer option array;  (** None once retired *)
  public_keys : string list;  (** all one-time pks, for proof generation *)
  commitment : string;
}

let create ~(scheme : Signature_scheme.scheme) ~(seed : string) ~(epochs : int) :
    t * string =
  if epochs <= 0 then invalid_arg "Ephemeral.create: epochs must be positive";
  let pairs =
    List.init epochs (fun e ->
        scheme.generate ~seed:(Printf.sprintf "ephemeral|%s|%d" seed e))
  in
  let signers = Array.of_list (List.map (fun (s, _) -> Some s) pairs) in
  let public_keys = List.map snd pairs in
  let commitment = Merkle.root public_keys in
  ({ scheme; signers; public_keys; commitment }, commitment)

let epochs (t : t) : int = Array.length t.signers

let commitment (t : t) : string = t.commitment

(* Sign for [epoch] and immediately delete the key: forward security
   means the signing capability is gone before the message leaves. *)
let sign (t : t) ~(epoch : int) (msg : string) : signed option =
  if epoch < 0 || epoch >= Array.length t.signers then None
  else begin
    match t.signers.(epoch) with
    | None -> None (* retired: not even the owner can sign again *)
    | Some signer ->
      t.signers.(epoch) <- None;
      let one_time_pk = List.nth t.public_keys epoch in
      let proof =
        match Merkle.prove t.public_keys ~index:epoch with
        | Some p -> p
        | None -> assert false
      in
      Some { epoch; one_time_pk; proof; signature = signer.sign msg }
  end

(* Proactively delete all keys up to and including [epoch] (e.g. when a
   user observes the network has moved past a round it never voted in). *)
let retire (t : t) ~(epoch : int) : unit =
  for e = 0 to min epoch (Array.length t.signers - 1) do
    t.signers.(e) <- None
  done

let is_retired (t : t) ~(epoch : int) : bool =
  epoch >= 0 && epoch < Array.length t.signers && t.signers.(epoch) = None

let verify ~(scheme : Signature_scheme.scheme) ~(commitment : string) ~(msg : string)
    (s : signed) : bool =
  s.proof.leaf_index = s.epoch
  && Merkle.verify ~root:commitment ~leaf:s.one_time_pk s.proof
  && scheme.verify ~pk:s.one_time_pk ~msg ~signature:s.signature

let signed_size_bytes (s : signed) : int =
  8 + String.length s.one_time_pk + Merkle.proof_size_bytes s.proof
  + String.length s.signature
