(** Forward-secure ephemeral signing keys (section 11, "forward
    security"): one-time keys committed to in advance via a Merkle
    root, deleted at (or before) use, so corrupting a user later cannot
    forge its past committee votes. *)

type signed = {
  epoch : int;
  one_time_pk : string;
  proof : Merkle.proof;  (** inclusion of [one_time_pk] in the commitment *)
  signature : string;
}

type t

val create : scheme:Signature_scheme.scheme -> seed:string -> epochs:int -> t * string
(** Derive [epochs] one-time key pairs; returns the key store and the
    public Merkle commitment. @raise Invalid_argument on epochs <= 0. *)

val epochs : t -> int
val commitment : t -> string

val sign : t -> epoch:int -> string -> signed option
(** Sign with the epoch's one-time key and delete it immediately;
    [None] when out of range or already used/retired. *)

val retire : t -> epoch:int -> unit
(** Delete every key up to and including [epoch]. *)

val is_retired : t -> epoch:int -> bool

val verify :
  scheme:Signature_scheme.scheme -> commitment:string -> msg:string -> signed -> bool

val signed_size_bytes : signed -> int
