(** Binary Merkle trees with inclusion proofs. Used by blocks to commit
    to their transaction list, enabling light-client payment
    verification from certified headers (the "cost of joining" concern
    of section 11). *)

val leaf_hash : string -> string
val node_hash : string -> string -> string
val empty_root : string

val root : string list -> string
(** Root over leaf data (leaves hashed with a distinct tag; odd nodes
    promoted unpaired; empty list gives [empty_root]). *)

type side = Left | Right
type proof = { leaf_index : int; path : (side * string) list }

val prove : string list -> index:int -> proof option
(** Inclusion proof for the [index]-th leaf; [None] out of range. *)

val verify : root:string -> leaf:string -> proof -> bool
val proof_size_bytes : proof -> int
