(* The curve25519 prime, shared by the generic (Nat-based) and
   fixed-limb (Fe25519) field implementations. *)

let p = Nat.sub (Nat.shift_left Nat.one 255) (Nat.of_int 19)
