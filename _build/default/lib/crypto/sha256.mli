(** SHA-256 (FIPS 180-4), pure OCaml, constants derived at init time. *)

val digest_length : int
(** 32 bytes. *)

val digest : string -> string
(** [digest msg] is the 32-byte SHA-256 digest of [msg]. *)

val digest_hex : string -> string
(** [digest_hex msg] is the digest rendered as lowercase hex. *)

val digest_concat : string list -> string
(** [digest_concat parts] hashes the concatenation of [parts]. *)

val digest_int : string -> int
(** A 62-bit nonnegative integer folded from the digest prefix; used to
    seed deterministic simulation RNGs from protocol hashes. *)
