(** Hexadecimal encoding of byte strings. *)

val of_string : string -> string
(** [of_string bytes] is the lowercase hex rendering of [bytes]. *)

val to_string : string -> string
(** [to_string hex] decodes a hex string back to raw bytes.
    @raise Invalid_argument on odd length or non-hex characters. *)
