(* RFC 4648 base32 (no padding) plus checksummed address rendering:
   Algorand-style human-readable account addresses are the base32
   encoding of the public key followed by a short SHA-256 checksum, so
   a single mistyped character is caught locally. *)

let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567"

let decode_table =
  let t = Array.make 256 (-1) in
  String.iteri (fun i c -> t.(Char.code c) <- i) alphabet;
  t

let encode (s : string) : string =
  let buf = Buffer.create ((String.length s * 8 / 5) + 1) in
  let acc = ref 0 and bits = ref 0 in
  String.iter
    (fun c ->
      acc := (!acc lsl 8) lor Char.code c;
      bits := !bits + 8;
      while !bits >= 5 do
        bits := !bits - 5;
        Buffer.add_char buf alphabet.[(!acc lsr !bits) land 31]
      done)
    s;
  if !bits > 0 then Buffer.add_char buf alphabet.[(!acc lsl (5 - !bits)) land 31];
  Buffer.contents buf

let decode (s : string) : string option =
  let buf = Buffer.create (String.length s * 5 / 8) in
  let acc = ref 0 and bits = ref 0 in
  let ok = ref true in
  String.iter
    (fun c ->
      let v = decode_table.(Char.code c) in
      if v < 0 then ok := false
      else begin
        acc := (!acc lsl 5) lor v;
        bits := !bits + 5;
        if !bits >= 8 then begin
          bits := !bits - 8;
          Buffer.add_char buf (Char.chr ((!acc lsr !bits) land 0xff))
        end
      end)
    s;
  (* Trailing bits must be zero padding. *)
  if (not !ok) || !acc land ((1 lsl !bits) - 1) <> 0 then None
  else Some (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Checksummed addresses.                                              *)
(* ------------------------------------------------------------------ *)

let checksum_length = 4

let address_of_pk (pk : string) : string =
  let check = String.sub (Sha256.digest_concat [ "addr"; pk ]) 0 checksum_length in
  encode (pk ^ check)

let pk_of_address (addr : string) : string option =
  match decode addr with
  | None -> None
  | Some raw ->
    let n = String.length raw in
    if n <= checksum_length then None
    else begin
      let pk = String.sub raw 0 (n - checksum_length) in
      let check = String.sub raw (n - checksum_length) checksum_length in
      if
        String.equal check
          (String.sub (Sha256.digest_concat [ "addr"; pk ]) 0 checksum_length)
      then Some pk
      else None
    end
