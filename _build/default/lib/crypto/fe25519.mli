(** Fixed-limb arithmetic in GF(2{^255} - 19): ten 26-bit limbs in
    native ints with fused multiply-and-fold reduction. Several times
    faster than the generic [Nat] field ops, against which the test
    suite cross-checks every operation. All public values are
    canonical (fully reduced). *)

type t

val zero : unit -> t
val one : unit -> t
val of_int : int -> t
val of_nat : Nat.t -> t
(** Reduces mod p. *)

val to_nat : t -> Nat.t
val equal : t -> t -> bool
val is_zero : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val sqr : t -> t

val pow : t -> Nat.t -> t
(** Square-and-multiply exponentiation. *)

val inv : t -> t
(** Multiplicative inverse (Fermat). *)

val copy : t -> t
