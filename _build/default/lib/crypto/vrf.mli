(** Verifiable random functions (Micali-Rabin-Vadhan), the primitive
    behind cryptographic sortition (section 5).

    Two implementations share one closure-record interface: [ecvrf] is
    a real ECVRF-style construction over the ed25519 curve; [sim] is a
    hash-based stand-in with the same output distribution but no
    secrecy, used for large-scale simulations (the paper itself elides
    verification cost when simulating 500,000 users, section 10.1). *)

type prover = { prove : string -> string * string  (** input -> (hash, proof) *) }

type scheme = {
  name : string;
  generate : seed:string -> prover * string;  (** seed -> (prover, public key) *)
  verify : pk:string -> input:string -> proof:string -> string option;
      (** the VRF hash, iff the proof is valid for [pk] and [input] *)
  proof_length : int;
  output_length : int;
}

val hash_to_curve : string -> Ed25519.point
(** Try-and-increment hashing to the prime-order subgroup. *)

val ecvrf : scheme
(** ECVRF over ed25519: Gamma = sk*H(input), Fiat-Shamir proof,
    cofactor-cleared output; structure per the Goldberg et al. VRF the
    paper cites. *)

val sim : scheme
(** Distribution-faithful simulation VRF (outputs derivable from the
    public key; zero-length proofs). See DESIGN.md, substitution 3. *)
