(* Hexadecimal encoding of byte strings. *)

let of_string (s : string) : string =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let digit_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.to_string: invalid hex digit"

let to_string (h : string) : string =
  if String.length h mod 2 <> 0 then invalid_arg "Hex.to_string: odd length";
  String.init
    (String.length h / 2)
    (fun i -> Char.chr ((digit_value h.[2 * i] lsl 4) lor digit_value h.[(2 * i) + 1]))
