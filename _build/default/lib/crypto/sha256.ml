(* SHA-256 (FIPS 180-4), pure OCaml.

   The round constants are the first 32 bits of the fractional parts of
   the cube roots of the first 64 primes, and the initial hash state
   comes from the square roots of the first 8 primes. Rather than
   transcribing 72 magic words (and risking a silent typo), we derive
   them exactly at module initialization with integer root extraction,
   and the test suite pins the resulting digests to known vectors. *)

let first_primes n =
  let rec is_prime k d = d * d > k || (k mod d <> 0 && is_prime k (d + 1)) in
  let rec collect acc k = if List.length acc = n then List.rev acc else collect (if is_prime k 2 then k :: acc else acc) (k + 1) in
  collect [] 2

(* Integer k-th root of [p * 2^(32k)]; the result fits easily in an int. *)
let scaled_root ~k p =
  let target = Nat.shift_left (Nat.of_int p) (32 * k) in
  let pow_k x =
    let nx = Nat.of_int x in
    let rec go acc i = if i = 0 then acc else go (Nat.mul acc nx) (i - 1) in
    go nx (k - 1)
  in
  let rec search lo hi =
    (* invariant: lo^k <= target < (hi+1)^k *)
    if lo = hi then lo
    else begin
      let mid = (lo + hi + 1) / 2 in
      if Nat.compare (pow_k mid) target <= 0 then search mid hi else search lo (mid - 1)
    end
  in
  search 0 (1 lsl 36)

let mask32 = 0xFFFFFFFF

let k_table =
  lazy (Array.of_list (List.map (fun p -> scaled_root ~k:3 p land mask32) (first_primes 64)))

let h_init =
  lazy (Array.of_list (List.map (fun p -> scaled_root ~k:2 p land mask32) (first_primes 8)))

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

let compress (h : int array) (block : string) (off : int) =
  let k = Lazy.force k_table in
  let w = Array.make 64 0 in
  for t = 0 to 15 do
    let b i = Char.code block.[off + (4 * t) + i] in
    w.(t) <- (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
    let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask32
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(t) + w.(t)) land mask32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let digest_length = 32

let digest (msg : string) : string =
  let h = Array.copy (Lazy.force h_init) in
  let len = String.length msg in
  let full_blocks = len / 64 in
  for i = 0 to full_blocks - 1 do
    compress h msg (i * 64)
  done;
  (* Padding: 0x80, zeroes, then the 64-bit big-endian bit length. *)
  let rem = len - (full_blocks * 64) in
  let pad_len = if rem < 56 then 64 else 128 in
  let tail = Bytes.make pad_len '\000' in
  Bytes.blit_string msg (full_blocks * 64) tail 0 rem;
  Bytes.set tail rem '\x80';
  let bitlen = len * 8 in
  for i = 0 to 7 do
    Bytes.set tail (pad_len - 1 - i) (Char.chr ((bitlen lsr (8 * i)) land 0xff))
  done;
  let tail = Bytes.unsafe_to_string tail in
  compress h tail 0;
  if pad_len = 128 then compress h tail 64;
  String.init 32 (fun i -> Char.chr ((h.(i / 4) lsr (8 * (3 - (i mod 4)))) land 0xff))

let digest_hex msg = Hex.of_string (digest msg)

let digest_concat parts = digest (String.concat "" parts)

(* A short (62-bit) nonnegative int view of a digest, handy for seeding
   simulation RNGs from protocol-level hashes. *)
let digest_int msg =
  let d = digest msg in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int
