(** HMAC-SHA256 (RFC 2104). *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] is the 32-byte HMAC tag of [msg] under [key]. *)
