(** RFC 4648 base32 (unpadded) and checksummed account addresses
    (base32 of pk || 4-byte SHA-256 checksum). *)

val encode : string -> string

val decode : string -> string option
(** [None] on non-alphabet characters or nonzero trailing padding. *)

val checksum_length : int
val address_of_pk : string -> string

val pk_of_address : string -> string option
(** [None] when the checksum does not match (catches typos). *)
