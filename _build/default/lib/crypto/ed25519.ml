(* The ed25519 twisted Edwards curve (-x^2 + y^2 = 1 + d x^2 y^2 over
   GF(2^255 - 19)) with Schnorr signatures.

   All group constants are computed rather than transcribed: d is
   -121665/121666, the base point is recovered from y = 4/5 with even x,
   and sqrt(-1) is 2^((p-1)/4). Module initialization asserts the base
   point is on the curve and that [L]B is the identity, so a derivation
   bug cannot go unnoticed.

   The signature scheme is textbook Schnorr over this curve with SHA-256
   as the hash (deliberately not RFC 8032 wire-compatible; this is a
   closed system with no interop requirement). *)

(* ------------------------------------------------------------------ *)
(* Field GF(p), p = 2^255 - 19, with pseudo-Mersenne reduction.        *)
(* ------------------------------------------------------------------ *)

module Fp = struct
  let p = Ed25519_p.p

  (* x mod p, folding the high part with 2^255 = 19 (mod p). *)
  let reduce (x : Nat.t) : Nat.t =
    let x = ref x in
    while Nat.bit_length !x > 255 do
      let lo = Nat.low_bits !x 255 and hi = Nat.shift_right !x 255 in
      x := Nat.add lo (Nat.mul_int hi 19)
    done;
    if Nat.compare !x p >= 0 then Nat.sub !x p else !x

  let zero = Nat.zero
  let one = Nat.one
  let add a b = reduce (Nat.add a b)
  let sub a b = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a p) b
  let mul a b = reduce (Nat.mul a b)
  let sqr a = mul a a
  let neg a = if Nat.is_zero a then a else Nat.sub p a

  let pow (base : Nat.t) (e : Nat.t) : Nat.t =
    let result = ref one in
    let b = ref (reduce base) in
    let bits = Nat.bit_length e in
    for i = 0 to bits - 1 do
      if Nat.testbit e i then result := mul !result !b;
      if i < bits - 1 then b := sqr !b
    done;
    !result

  let inv a = pow a (Nat.sub p Nat.two)

  (* sqrt(-1) = 2^((p-1)/4) mod p *)
  let sqrt_m1 = pow Nat.two (Nat.shift_right (Nat.sub p Nat.one) 2)

  (* Square root via the (p+3)/8 exponent trick. *)
  let sqrt (u : Nat.t) : Nat.t option =
    let cand = pow u (Nat.shift_right (Nat.add p (Nat.of_int 3)) 3) in
    let c2 = sqr cand in
    if Nat.equal c2 u then Some cand
    else begin
      let cand' = mul cand sqrt_m1 in
      if Nat.equal (sqr cand') u then Some cand' else None
    end

  let of_int = Nat.of_int
end

(* Curve coefficient d = -121665/121666 and 2d. *)
let d = Fp.mul (Fp.neg (Fp.of_int 121665)) (Fp.inv (Fp.of_int 121666))
let two_d = Fp.add d d

(* Prime subgroup order L = 2^252 + 27742317777372353535851937790883648493 *)
let order =
  Nat.add
    (Nat.shift_left Nat.one 252)
    (Nat.of_decimal "27742317777372353535851937790883648493")

(* ------------------------------------------------------------------ *)
(* Points in extended homogeneous coordinates (X : Y : Z : T).         *)
(*                                                                     *)
(* Coordinates live in the fixed-limb field (Fe25519): the group law   *)
(* runs thousands of field multiplications per scalar multiplication,  *)
(* and the fixed representation is several times faster than the       *)
(* generic Nat arithmetic (which remains the reference oracle in the   *)
(* Fp module above and in the test suite).                             *)
(* ------------------------------------------------------------------ *)

module Fe = Fe25519

type point = { x : Fe.t; y : Fe.t; z : Fe.t; t : Fe.t }

let two_d_fe = Fe.of_nat two_d

let identity = { x = Fe.zero (); y = Fe.one (); z = Fe.one (); t = Fe.zero () }

let of_affine ~x ~y =
  let fx = Fe.of_nat x and fy = Fe.of_nat y in
  { x = fx; y = fy; z = Fe.one (); t = Fe.mul fx fy }

let to_affine (p : point) : Nat.t * Nat.t =
  let zi = Fe.inv p.z in
  (Fe.to_nat (Fe.mul p.x zi), Fe.to_nat (Fe.mul p.y zi))

let on_curve (pt : point) : bool =
  let x, y = to_affine pt in
  let x2 = Fp.sqr x and y2 = Fp.sqr y in
  let lhs = Fp.sub y2 x2 in
  let rhs = Fp.add Fp.one (Fp.mul d (Fp.mul x2 y2)) in
  Nat.equal lhs rhs

(* RFC 8032 extended-coordinate addition (a = -1, complete formulas). *)
let add (p : point) (q : point) : point =
  let a = Fe.mul (Fe.sub p.y p.x) (Fe.sub q.y q.x) in
  let b = Fe.mul (Fe.add p.y p.x) (Fe.add q.y q.x) in
  let c = Fe.mul (Fe.mul p.t two_d_fe) q.t in
  let dd = Fe.mul (Fe.add p.z p.z) q.z in
  let e = Fe.sub b a in
  let f = Fe.sub dd c in
  let g = Fe.add dd c in
  let h = Fe.add b a in
  { x = Fe.mul e f; y = Fe.mul g h; t = Fe.mul e h; z = Fe.mul f g }

let double (p : point) : point =
  let a = Fe.sqr p.x in
  let b = Fe.sqr p.y in
  let c = Fe.add (Fe.sqr p.z) (Fe.sqr p.z) in
  let h = Fe.add a b in
  let e = Fe.sub h (Fe.sqr (Fe.add p.x p.y)) in
  let g = Fe.sub a b in
  let f = Fe.add c g in
  { x = Fe.mul e f; y = Fe.mul g h; t = Fe.mul e h; z = Fe.mul f g }

let neg (p : point) : point = { p with x = Fe.neg p.x; t = Fe.neg p.t }

let scalar_mult (k : Nat.t) (p : point) : point =
  let acc = ref identity in
  for i = Nat.bit_length k - 1 downto 0 do
    acc := double !acc;
    if Nat.testbit k i then acc := add !acc p
  done;
  !acc

let equal_points (p : point) (q : point) : bool =
  (* Cross-multiplied comparison avoids inversions. *)
  Fe.equal (Fe.mul p.x q.z) (Fe.mul q.x p.z)
  && Fe.equal (Fe.mul p.y q.z) (Fe.mul q.y p.z)

(* ------------------------------------------------------------------ *)
(* Point compression: 32 bytes, little-endian y with x parity on top.  *)
(* ------------------------------------------------------------------ *)

let encode (p : point) : string =
  let x, y = to_affine p in
  let b = Bytes.of_string (Nat.to_bytes_le y ~len:32) in
  if Nat.testbit x 0 then Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) lor 0x80));
  Bytes.unsafe_to_string b

let decode (s : string) : point option =
  if String.length s <> 32 then None
  else begin
    let sign = Char.code s.[31] lsr 7 in
    let y_bytes =
      let b = Bytes.of_string s in
      Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) land 0x7f));
      Bytes.unsafe_to_string b
    in
    let y = Nat.of_bytes_le y_bytes in
    if Nat.compare y Fp.p >= 0 then None
    else begin
      let y2 = Fp.sqr y in
      let u = Fp.sub y2 Fp.one in
      let v = Fp.add (Fp.mul d y2) Fp.one in
      match Fp.sqrt (Fp.mul u (Fp.inv v)) with
      | None -> None
      | Some x ->
        if Nat.is_zero x && sign = 1 then None
        else begin
          let x = if (if Nat.testbit x 0 then 1 else 0) <> sign then Fp.neg x else x in
          Some (of_affine ~x ~y)
        end
    end
  end

(* Base point: y = 4/5, even x. *)
let base =
  let y = Fp.mul (Fp.of_int 4) (Fp.inv (Fp.of_int 5)) in
  let enc = Nat.to_bytes_le y ~len:32 in
  match decode enc with
  | Some b -> b
  | None -> failwith "ed25519: base point derivation failed"

let () =
  (* Self-check the derived constants once at startup. *)
  assert (on_curve base);
  assert (equal_points (scalar_mult order base) identity)

(* ------------------------------------------------------------------ *)
(* Schnorr signatures.                                                 *)
(* ------------------------------------------------------------------ *)

type secret = { seed : string; scalar : Nat.t; public : string }
type public = string

let scalar_of_hash (h : string) : Nat.t =
  (* Uniform nonzero scalar: 1 + (h mod (L-1)). *)
  Nat.add Nat.one (Nat.rem (Nat.of_bytes_le h) (Nat.sub order Nat.one))

let derive_scalar ~seed = scalar_of_hash (Sha256.digest_concat [ "ed25519-scalar"; seed ])

let generate ~(seed : string) : secret =
  let scalar = derive_scalar ~seed in
  let public = encode (scalar_mult scalar base) in
  { seed; scalar; public }

let public_key (sk : secret) : public = sk.public
let secret_scalar (sk : secret) : Nat.t = sk.scalar
let secret_seed (sk : secret) : string = sk.seed

let signature_length = 64

let challenge ~r_enc ~public ~msg =
  Nat.rem (Nat.of_bytes_le (Sha256.digest_concat [ "ed25519-chal"; r_enc; public; msg ])) order

let sign (sk : secret) (msg : string) : string =
  let k = scalar_of_hash (Sha256.digest_concat [ "ed25519-nonce"; sk.seed; msg ]) in
  let r_enc = encode (scalar_mult k base) in
  let e = challenge ~r_enc ~public:sk.public ~msg in
  let s = Nat.rem (Nat.add k (Nat.mul e sk.scalar)) order in
  r_enc ^ Nat.to_bytes_le s ~len:32

let verify ~(public : public) ~(msg : string) ~(signature : string) : bool =
  String.length signature = signature_length
  &&
  let r_enc = String.sub signature 0 32 in
  let s = Nat.of_bytes_le (String.sub signature 32 32) in
  Nat.compare s order < 0
  &&
  match (decode r_enc, decode public) with
  | Some r, Some a ->
    let e = challenge ~r_enc ~public ~msg in
    (* s*B = R + e*A *)
    equal_points (scalar_mult s base) (add r (scalar_mult e a))
  | _ -> false
