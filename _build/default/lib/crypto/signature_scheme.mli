(** Pluggable signature schemes, mirroring the two VRF implementations:
    [ed25519] is real Schnorr; [sim] is a recomputable hash tag with
    the same interface, for large-scale simulations. *)

type signer = { sign : string -> string }

type scheme = {
  name : string;
  generate : seed:string -> signer * string;  (** seed -> (signer, public key) *)
  verify : pk:string -> msg:string -> signature:string -> bool;
  signature_length : int;
}

val ed25519 : scheme
val sim : scheme
