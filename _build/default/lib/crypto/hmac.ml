(* HMAC-SHA256 (RFC 2104). *)

let block_size = 64

let sha256 ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let pad c =
    String.init block_size (fun i ->
        let k = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (k lxor c))
  in
  let ipad = pad 0x36 and opad = pad 0x5c in
  Sha256.digest_concat [ opad; Sha256.digest_concat [ ipad; msg ] ]
