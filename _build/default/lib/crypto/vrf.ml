(* Verifiable random functions (Micali-Rabin-Vadhan), two implementations
   behind one closure-record interface:

   - [ecvrf]: an ECVRF-style construction over the ed25519 curve
     (try-and-increment hash-to-curve, Gamma = sk*H, Fiat-Shamir proof,
     cofactor-cleared output), following the structure of the Goldberg
     et al. VRF cited by the paper (section 9).

   - [sim]: a hash-based stand-in with the same interface and the same
     output distribution but no secrecy (outputs are derivable from the
     public key). The paper itself replaces cryptographic verification
     with sleeps when simulating 500,000 users (section 10.1); [sim]
     plays that role for our large-scale simulations, with verification
     cost modeled by the simulator instead of burned in CPU. *)

type prover = { prove : string -> string * string  (** input -> (hash, proof) *) }

type scheme = {
  name : string;
  generate : seed:string -> prover * string;  (** seed -> (prover, public key) *)
  verify : pk:string -> input:string -> proof:string -> string option;
      (** Returns the VRF hash iff the proof is valid for [pk] and [input]. *)
  proof_length : int;
  output_length : int;
}

(* ------------------------------------------------------------------ *)
(* ECVRF over ed25519.                                                 *)
(* ------------------------------------------------------------------ *)

let hash_to_curve (input : string) : Ed25519.point =
  let rec attempt ctr =
    if ctr > 255 then failwith "Vrf.hash_to_curve: no point found (probability ~2^-256)"
    else begin
      let candidate =
        Sha256.digest_concat [ "vrf-h2c"; input; String.make 1 (Char.chr ctr) ]
      in
      match Ed25519.decode candidate with
      | Some p ->
        (* Multiply by the cofactor 8 so the point lies in the prime
           subgroup; reject the (negligible) identity outcome. *)
        let p8 = Ed25519.double (Ed25519.double (Ed25519.double p)) in
        if Ed25519.equal_points p8 Ed25519.identity then attempt (ctr + 1) else p8
      | None -> attempt (ctr + 1)
    end
  in
  attempt 0

let challenge ~h_enc ~gamma_enc ~u_enc ~v_enc : Nat.t =
  (* 128-bit Fiat-Shamir challenge. *)
  Nat.low_bits
    (Nat.of_bytes_le (Sha256.digest_concat [ "vrf-chal"; h_enc; gamma_enc; u_enc; v_enc ]))
    128

let output_of_gamma gamma = Sha256.digest_concat [ "vrf-out"; Ed25519.encode gamma ]

let ecvrf : scheme =
  let proof_length = 32 + 16 + 32 in
  let generate ~seed =
    let sk = Ed25519.generate ~seed:("vrf-" ^ seed) in
    let pk = Ed25519.public_key sk in
    let a = Ed25519.secret_scalar sk in
    let prove input =
      let h = hash_to_curve input in
      let h_enc = Ed25519.encode h in
      let gamma = Ed25519.scalar_mult a h in
      let gamma_enc = Ed25519.encode gamma in
      let k =
        Nat.add Nat.one
          (Nat.rem
             (Nat.of_bytes_le
                (Sha256.digest_concat [ "vrf-nonce"; Ed25519.secret_seed sk; input ]))
             (Nat.sub Ed25519.order Nat.one))
      in
      let u_enc = Ed25519.encode (Ed25519.scalar_mult k Ed25519.base) in
      let v_enc = Ed25519.encode (Ed25519.scalar_mult k h) in
      let c = challenge ~h_enc ~gamma_enc ~u_enc ~v_enc in
      let s = Nat.rem (Nat.add k (Nat.mul c a)) Ed25519.order in
      let proof = gamma_enc ^ Nat.to_bytes_le c ~len:16 ^ Nat.to_bytes_le s ~len:32 in
      (output_of_gamma gamma, proof)
    in
    ({ prove }, pk)
  in
  let verify ~pk ~input ~proof =
    if String.length proof <> proof_length then None
    else begin
      let gamma_enc = String.sub proof 0 32 in
      let c = Nat.of_bytes_le (String.sub proof 32 16) in
      let s = Nat.of_bytes_le (String.sub proof 48 32) in
      if Nat.compare s Ed25519.order >= 0 then None
      else begin
        match (Ed25519.decode gamma_enc, Ed25519.decode pk) with
        | Some gamma, Some a_pt ->
          let h = hash_to_curve input in
          let h_enc = Ed25519.encode h in
          (* U = s*B - c*A,  V = s*H - c*Gamma *)
          let u =
            Ed25519.add
              (Ed25519.scalar_mult s Ed25519.base)
              (Ed25519.neg (Ed25519.scalar_mult c a_pt))
          in
          let v =
            Ed25519.add
              (Ed25519.scalar_mult s h)
              (Ed25519.neg (Ed25519.scalar_mult c gamma))
          in
          let c' =
            challenge ~h_enc ~gamma_enc ~u_enc:(Ed25519.encode u)
              ~v_enc:(Ed25519.encode v)
          in
          if Nat.equal c c' then Some (output_of_gamma gamma) else None
        | _ -> None
      end
    end
  in
  { name = "ecvrf"; generate; verify; proof_length; output_length = 32 }

(* ------------------------------------------------------------------ *)
(* Simulation VRF: distribution-faithful, zero-cost, no secrecy.       *)
(* ------------------------------------------------------------------ *)

let sim : scheme =
  let generate ~seed =
    (* pk doubles as the (publicly known) key material: correct selection
       distribution, no privacy. See DESIGN.md, substitution 3. *)
    let pk = Sha256.digest_concat [ "simvrf-key"; seed ] in
    let prove input = (Sha256.digest_concat [ "simvrf-out"; pk; input ], "") in
    ({ prove }, pk)
  in
  let verify ~pk ~input ~proof =
    if proof <> "" then None else Some (Sha256.digest_concat [ "simvrf-out"; pk; input ])
  in
  { name = "sim"; generate; verify; proof_length = 0; output_length = 32 }
