(** The ed25519 twisted Edwards curve with Schnorr signatures.

    Group constants are derived (not transcribed) and self-checked at
    module initialization. The signature scheme is Schnorr with SHA-256
    and is not RFC 8032 wire-compatible; Algorand is a closed system so
    no interop is required (see DESIGN.md, substitution 2). *)

module Fp : sig
  val p : Nat.t
  val zero : Nat.t
  val one : Nat.t
  val add : Nat.t -> Nat.t -> Nat.t
  val sub : Nat.t -> Nat.t -> Nat.t
  val mul : Nat.t -> Nat.t -> Nat.t
  val sqr : Nat.t -> Nat.t
  val neg : Nat.t -> Nat.t
  val inv : Nat.t -> Nat.t
  val pow : Nat.t -> Nat.t -> Nat.t
  val sqrt : Nat.t -> Nat.t option
  val of_int : int -> Nat.t
end

type point

val order : Nat.t
(** Order of the prime subgroup (the scalar group). *)

val identity : point
val base : point
val add : point -> point -> point
val double : point -> point
val neg : point -> point
val scalar_mult : Nat.t -> point -> point
val equal_points : point -> point -> bool
val on_curve : point -> bool
val to_affine : point -> Nat.t * Nat.t

val encode : point -> string
(** 32-byte compressed encoding (little-endian y, x parity in the top bit). *)

val decode : string -> point option

(** {1 Schnorr signatures} *)

type secret
type public = string

val generate : seed:string -> secret
(** Deterministic key generation from an arbitrary seed string. *)

val public_key : secret -> public

val secret_scalar : secret -> Nat.t
(** The private scalar; consumed by the VRF (Gamma = scalar * H). *)

val secret_seed : secret -> string
(** The generation seed; consumed by the VRF for deterministic nonces. *)

val signature_length : int
val sign : secret -> string -> string
val verify : public:public -> msg:string -> signature:string -> bool
