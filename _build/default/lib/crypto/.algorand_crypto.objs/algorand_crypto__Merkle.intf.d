lib/crypto/merkle.mli:
