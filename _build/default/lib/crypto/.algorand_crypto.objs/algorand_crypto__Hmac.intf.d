lib/crypto/hmac.mli:
