lib/crypto/base32.mli:
