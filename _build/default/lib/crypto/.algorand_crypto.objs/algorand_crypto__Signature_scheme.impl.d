lib/crypto/signature_scheme.ml: Ed25519 Sha256 String
