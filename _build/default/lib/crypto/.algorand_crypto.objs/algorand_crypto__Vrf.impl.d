lib/crypto/vrf.ml: Char Ed25519 Nat Sha256 String
