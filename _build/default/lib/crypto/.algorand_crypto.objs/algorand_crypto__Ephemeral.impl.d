lib/crypto/ephemeral.ml: Array List Merkle Printf Signature_scheme String
