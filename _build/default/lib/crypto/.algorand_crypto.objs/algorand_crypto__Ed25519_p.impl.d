lib/crypto/ed25519_p.ml: Nat
