lib/crypto/fe25519.mli: Nat
