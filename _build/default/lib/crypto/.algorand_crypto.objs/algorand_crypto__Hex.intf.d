lib/crypto/hex.mli:
