lib/crypto/nat.mli: Format
