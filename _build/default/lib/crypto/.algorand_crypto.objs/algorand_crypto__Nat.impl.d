lib/crypto/nat.ml: Array Buffer Char Format Stdlib String
