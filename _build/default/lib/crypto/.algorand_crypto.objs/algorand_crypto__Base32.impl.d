lib/crypto/base32.ml: Array Buffer Char Sha256 String
