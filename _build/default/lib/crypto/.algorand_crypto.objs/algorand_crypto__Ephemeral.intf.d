lib/crypto/ephemeral.mli: Merkle Signature_scheme
