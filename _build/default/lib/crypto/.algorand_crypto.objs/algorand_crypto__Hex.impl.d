lib/crypto/hex.ml: Buffer Char Printf String
