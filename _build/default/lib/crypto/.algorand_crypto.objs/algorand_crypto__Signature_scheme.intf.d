lib/crypto/signature_scheme.mli:
