lib/crypto/fe25519.ml: Array Ed25519_p Nat
