lib/crypto/vrf.mli: Ed25519
