lib/crypto/sha256.ml: Array Bytes Char Hex Lazy List Nat String
