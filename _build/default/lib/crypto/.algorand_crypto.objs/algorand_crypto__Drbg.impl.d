lib/crypto/drbg.ml: Buffer Char Hmac Sha256 String
