lib/crypto/ed25519.ml: Bytes Char Ed25519_p Fe25519 Nat Sha256 String
