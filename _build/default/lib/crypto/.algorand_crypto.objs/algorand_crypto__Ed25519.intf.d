lib/crypto/ed25519.mli: Nat
