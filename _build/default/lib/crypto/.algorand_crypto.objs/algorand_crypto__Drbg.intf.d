lib/crypto/drbg.mli:
