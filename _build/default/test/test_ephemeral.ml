(* Forward-secure ephemeral keys (section 11 extension). *)

open Algorand_crypto

let t name f = Alcotest.test_case name `Quick f

let scheme = Signature_scheme.sim

let sign_verify_roundtrip () =
  let keys, commitment = Ephemeral.create ~scheme ~seed:"alice" ~epochs:8 in
  Alcotest.(check int) "epochs" 8 (Ephemeral.epochs keys);
  Alcotest.(check string) "commitment accessor" (Hex.of_string commitment)
    (Hex.of_string (Ephemeral.commitment keys));
  match Ephemeral.sign keys ~epoch:3 "vote payload" with
  | None -> Alcotest.fail "signing failed"
  | Some s ->
    Alcotest.(check int) "epoch recorded" 3 s.epoch;
    Alcotest.(check bool) "verifies" true
      (Ephemeral.verify ~scheme ~commitment ~msg:"vote payload" s);
    Alcotest.(check bool) "wrong message" false
      (Ephemeral.verify ~scheme ~commitment ~msg:"other" s);
    Alcotest.(check bool) "wrong commitment" false
      (Ephemeral.verify ~scheme ~commitment:(Sha256.digest "x") ~msg:"vote payload" s)

let key_deleted_after_use () =
  let keys, _ = Ephemeral.create ~scheme ~seed:"bob" ~epochs:4 in
  Alcotest.(check bool) "first use works" true (Ephemeral.sign keys ~epoch:1 "m" <> None);
  (* Forward security: the key is gone, even for its owner. *)
  Alcotest.(check bool) "second use fails" true (Ephemeral.sign keys ~epoch:1 "m2" = None);
  Alcotest.(check bool) "marked retired" true (Ephemeral.is_retired keys ~epoch:1);
  (* Other epochs unaffected. *)
  Alcotest.(check bool) "epoch 2 still live" true (Ephemeral.sign keys ~epoch:2 "m" <> None)

let retirement () =
  let keys, _ = Ephemeral.create ~scheme ~seed:"carol" ~epochs:6 in
  Ephemeral.retire keys ~epoch:3;
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d retired" e)
        true
        (Ephemeral.sign keys ~epoch:e "m" = None))
    [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "epoch 4 alive" true (Ephemeral.sign keys ~epoch:4 "m" <> None)

let out_of_range () =
  let keys, _ = Ephemeral.create ~scheme ~seed:"dan" ~epochs:2 in
  Alcotest.(check bool) "negative" true (Ephemeral.sign keys ~epoch:(-1) "m" = None);
  Alcotest.(check bool) "too large" true (Ephemeral.sign keys ~epoch:2 "m" = None);
  Alcotest.check_raises "zero epochs" (Invalid_argument
    "Ephemeral.create: epochs must be positive") (fun () ->
      ignore (Ephemeral.create ~scheme ~seed:"x" ~epochs:0))

let cross_epoch_transplant_rejected () =
  (* A signature from epoch 2 must not verify when presented as epoch
     4's, even with the matching proof swapped in: the proof index is
     bound to the claimed epoch. *)
  let keys, commitment = Ephemeral.create ~scheme ~seed:"eve" ~epochs:8 in
  let s2 = Option.get (Ephemeral.sign keys ~epoch:2 "m") in
  let s4 = Option.get (Ephemeral.sign keys ~epoch:4 "m") in
  let franken = { s2 with epoch = 4; proof = s4.proof } in
  Alcotest.(check bool) "transplant rejected" false
    (Ephemeral.verify ~scheme ~commitment ~msg:"m" franken);
  let franken2 = { s2 with epoch = 4 } in
  Alcotest.(check bool) "relabeled epoch rejected" false
    (Ephemeral.verify ~scheme ~commitment ~msg:"m" franken2)

let users_have_distinct_commitments () =
  let _, c1 = Ephemeral.create ~scheme ~seed:"u1" ~epochs:4 in
  let _, c2 = Ephemeral.create ~scheme ~seed:"u2" ~epochs:4 in
  Alcotest.(check bool) "distinct" false (String.equal c1 c2)

let suite =
  [
    ( "ephemeral",
      [
        t "sign/verify roundtrip" sign_verify_roundtrip;
        t "key deleted after use" key_deleted_after_use;
        t "retirement" retirement;
        t "out of range" out_of_range;
        t "cross-epoch transplant rejected" cross_epoch_transplant_rejected;
        t "distinct commitments" users_have_distinct_commitments;
      ] );
  ]
