(* Curve group laws, encoding, and Schnorr signature behavior. The
   group constants are derived at module init (with internal asserts);
   these tests re-verify the algebra independently. *)

open Algorand_crypto

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let point_eq = Ed25519.equal_points

let base_checks () =
  Alcotest.(check bool) "base on curve" true (Ed25519.on_curve Ed25519.base);
  Alcotest.(check bool) "order * base = identity" true
    (point_eq (Ed25519.scalar_mult Ed25519.order Ed25519.base) Ed25519.identity);
  Alcotest.(check bool) "base <> identity" false (point_eq Ed25519.base Ed25519.identity)

let group_laws () =
  let p2 = Ed25519.double Ed25519.base in
  let p2' = Ed25519.add Ed25519.base Ed25519.base in
  Alcotest.(check bool) "double = add self" true (point_eq p2 p2');
  let p3 = Ed25519.add p2 Ed25519.base in
  let p3' = Ed25519.scalar_mult (Nat.of_int 3) Ed25519.base in
  Alcotest.(check bool) "3B two ways" true (point_eq p3 p3');
  Alcotest.(check bool) "identity is neutral" true
    (point_eq (Ed25519.add p3 Ed25519.identity) p3);
  Alcotest.(check bool) "P + (-P) = O" true
    (point_eq (Ed25519.add p3 (Ed25519.neg p3)) Ed25519.identity);
  (* (a+b)B = aB + bB *)
  let a = Nat.of_int 123456 and b = Nat.of_int 654321 in
  let lhs = Ed25519.scalar_mult (Nat.add a b) Ed25519.base in
  let rhs =
    Ed25519.add (Ed25519.scalar_mult a Ed25519.base) (Ed25519.scalar_mult b Ed25519.base)
  in
  Alcotest.(check bool) "scalar mult is homomorphic" true (point_eq lhs rhs)

let encoding_roundtrip () =
  List.iter
    (fun k ->
      let p = Ed25519.scalar_mult (Nat.of_int k) Ed25519.base in
      let enc = Ed25519.encode p in
      Alcotest.(check int) "32 bytes" 32 (String.length enc);
      match Ed25519.decode enc with
      | Some p' -> Alcotest.(check bool) "roundtrip" true (point_eq p p')
      | None -> Alcotest.fail "decode failed")
    [ 1; 2; 3; 7; 1000; 99999 ]

let decode_garbage () =
  (* Most random strings are not curve points; none may crash, and a
     y >= p encoding must be rejected. *)
  Alcotest.(check bool) "y = p rejected" true
    (Ed25519.decode (Nat.to_bytes_le Ed25519.Fp.p ~len:32) = None);
  Alcotest.(check bool) "short string rejected" true (Ed25519.decode "abc" = None);
  let d = Drbg.create ~seed:"garbage" in
  let decoded = ref 0 in
  for _ = 1 to 50 do
    match Ed25519.decode (Drbg.random_bytes d 32) with
    | Some p -> incr decoded; Alcotest.(check bool) "on curve" true (Ed25519.on_curve p)
    | None -> ()
  done;
  (* About half of random y values decode. *)
  Alcotest.(check bool) "some decode" true (!decoded > 5 && !decoded < 45)

let sqrt_correct () =
  (* sqrt returns a value whose square matches, for quadratic residues. *)
  let open Ed25519.Fp in
  for k = 2 to 20 do
    let x = of_int k in
    let sq = mul x x in
    match sqrt sq with
    | None -> Alcotest.fail "square must have a root"
    | Some r ->
      Alcotest.(check bool)
        (Printf.sprintf "root of %d^2" k)
        true
        (Nat.equal (mul r r) sq)
  done

let sign_verify () =
  let sk = Ed25519.generate ~seed:"signer" in
  let pk = Ed25519.public_key sk in
  let s = Ed25519.sign sk "a message" in
  Alcotest.(check int) "signature length" Ed25519.signature_length (String.length s);
  Alcotest.(check bool) "verifies" true
    (Ed25519.verify ~public:pk ~msg:"a message" ~signature:s);
  Alcotest.(check bool) "wrong message" false
    (Ed25519.verify ~public:pk ~msg:"b message" ~signature:s);
  Alcotest.(check bool) "wrong key" false
    (Ed25519.verify
       ~public:(Ed25519.public_key (Ed25519.generate ~seed:"other"))
       ~msg:"a message" ~signature:s);
  (* Deterministic signatures. *)
  Alcotest.(check string) "deterministic" s (Ed25519.sign sk "a message")

let signature_malleability () =
  let sk = Ed25519.generate ~seed:"malleable" in
  let pk = Ed25519.public_key sk in
  let s = Ed25519.sign sk "m" in
  (* Flipping any byte must break the signature. *)
  for i = 0 to Ed25519.signature_length - 1 do
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    if Ed25519.verify ~public:pk ~msg:"m" ~signature:(Bytes.to_string b) then
      Alcotest.fail (Printf.sprintf "bit flip at byte %d still verifies" i)
  done;
  (* s >= order must be rejected even if congruent. *)
  let r_enc = String.sub s 0 32 in
  let s_val = Nat.of_bytes_le (String.sub s 32 32) in
  let bumped = Nat.add s_val Ed25519.order in
  if Nat.bit_length bumped <= 256 then begin
    let forged = r_enc ^ Nat.to_bytes_le bumped ~len:32 in
    Alcotest.(check bool) "s + order rejected" false
      (Ed25519.verify ~public:pk ~msg:"m" ~signature:forged)
  end

let distinct_seeds_distinct_keys () =
  let pks =
    List.init 20 (fun i ->
        Ed25519.public_key (Ed25519.generate ~seed:(string_of_int i)))
  in
  Alcotest.(check int) "all distinct" 20 (List.length (List.sort_uniq compare pks))

let suite =
  [
    ( "ed25519",
      [
        t "base point checks" base_checks;
        ts "group laws" group_laws;
        ts "encoding roundtrip" encoding_roundtrip;
        ts "decode garbage" decode_garbage;
        t "sqrt" sqrt_correct;
        ts "sign/verify" sign_verify;
        ts "malleability resistance" signature_malleability;
        ts "distinct keys" distinct_seeds_distinct_keys;
      ] );
  ]
