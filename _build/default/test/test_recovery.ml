(* Fork recovery (section 8.2) beyond the partition test in
   test_harness: the synchronized checkpoint behavior on a healthy
   network, and recovery under a sustained targeted DoS. *)

module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Chain = Algorand_ledger.Chain
module Block = Algorand_ledger.Block

let ts name f = Alcotest.test_case name `Slow f

let fast_params ~recovery_interval ~max_steps =
  {
    Algorand_ba.Params.paper with
    lambda_priority = 1.0;
    lambda_stepvar = 1.0;
    lambda_block = 10.0;
    lambda_step = 5.0;
    max_steps;
    recovery_interval;
  }

let healthy_checkpoint () =
  (* All users stop regular processing at the recovery tick even when
     healthy (the paper's clock-driven design): the recovery inserts an
     empty block on the agreed fork and normal rounds resume. *)
  let r =
    Harness.run
      {
        Harness.default with
        users = 12;
        rounds = 6;
        params = fast_params ~recovery_interval:8.0 ~max_steps:20;
        block_bytes = 10_000;
        tx_rate_per_s = 0.0;
        recovery_enabled = true;
        max_sim_time = 400.0;
        rng_seed = 13;
      }
  in
  Alcotest.(check (list int)) "no double finals" [] r.safety.double_final;
  let recoveries =
    Array.fold_left (fun a n -> a + Node.recoveries_completed n) 0 r.harness.nodes
  in
  Alcotest.(check bool) (Printf.sprintf "checkpoints ran (%d)" recoveries) true
    (recoveries > 0);
  (* Chains converged and contain at least one recovery (empty) block
     between normal ones. *)
  let tip0 = Chain.tip (Node.chain r.harness.nodes.(0)) in
  Array.iter
    (fun n ->
      Alcotest.(check bool) "tips equal" true
        (String.equal tip0.hash (Chain.tip (Node.chain n)).hash))
    r.harness.nodes;
  let empties =
    List.length
      (List.filter
         (fun (e : Chain.entry) -> e.height > 0 && Block.is_empty e.block)
         (Chain.ancestry (Node.chain r.harness.nodes.(0)) tip0.hash))
  in
  Alcotest.(check bool) (Printf.sprintf "recovery blocks present (%d)" empties) true
    (empties > 0)

let dos_then_recovery () =
  (* Drop all traffic of 40% of users for a long window: the victims
     stall; after the attack ends, the periodic recovery re-converges
     everyone onto one fork. *)
  let r =
    Harness.run
      {
        Harness.default with
        users = 15;
        rounds = 3;
        params = fast_params ~recovery_interval:120.0 ~max_steps:8;
        block_bytes = 10_000;
        tx_rate_per_s = 0.0;
        attack = Harness.Targeted_dos { fraction = 0.4; from_ = 2.0; until = 90.0 };
        recovery_enabled = true;
        max_sim_time = 600.0;
        rng_seed = 14;
      }
  in
  Alcotest.(check (list int)) "no double finals" [] r.safety.double_final;
  let tip_heights =
    Array.to_list (Array.map (fun n -> (Chain.tip (Node.chain n)).height) r.harness.nodes)
  in
  (* Everyone made progress past the stall. *)
  List.iteri
    (fun i h ->
      Alcotest.(check bool) (Printf.sprintf "node %d progressed (tip %d)" i h) true (h >= 3))
    tip_heights;
  let tip0 = (Chain.tip (Node.chain r.harness.nodes.(0))).hash in
  Array.iter
    (fun n ->
      Alcotest.(check bool) "converged" true
        (String.equal tip0 (Chain.tip (Node.chain n)).hash))
    r.harness.nodes

let recovery_preserves_finality () =
  (* Blocks final before a recovery must remain on every converged
     chain afterwards (the fork proposal must graft above finality). *)
  let r =
    Harness.run
      {
        Harness.default with
        users = 12;
        rounds = 4;
        params = fast_params ~recovery_interval:10.0 ~max_steps:20;
        block_bytes = 10_000;
        tx_rate_per_s = 1.0;
        recovery_enabled = true;
        max_sim_time = 400.0;
        rng_seed = 15;
      }
  in
  Alcotest.(check (list int)) "no double finals" [] r.safety.double_final;
  (* Collect every block any node marked final; each must be an
     ancestor of every node's tip. *)
  Array.iter
    (fun owner ->
      let chain = Node.chain owner in
      List.iter
        (fun (e : Chain.entry) ->
          if e.final && e.height > 0 then
            Array.iter
              (fun n ->
                let c = Node.chain n in
                match Chain.find c e.hash with
                | Some _ ->
                  Alcotest.(check bool) "final block on tip path" true
                    (Chain.descends_from c ~hash:(Chain.tip c).hash ~ancestor:e.hash)
                | None -> ())
              r.harness.nodes)
        (Chain.ancestry chain (Chain.tip chain).hash))
    r.harness.nodes

let suite =
  [
    ( "recovery",
      [
        ts "healthy-network checkpoint" healthy_checkpoint;
        ts "DoS then recovery" dos_then_recovery;
        ts "recovery preserves finality" recovery_preserves_finality;
      ] );
  ]
