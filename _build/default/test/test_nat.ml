(* Unit and property tests for the arbitrary-precision naturals. *)

open Algorand_crypto

let check_eq msg a b = Alcotest.(check string) msg (Nat.to_decimal a) (Nat.to_decimal b)

let t name f = Alcotest.test_case name `Quick f
let qt ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Random naturals as decimal strings up to ~40 digits. *)
let gen_nat : Nat.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map
      (fun digits ->
        let s = String.concat "" (List.map string_of_int digits) in
        Nat.of_decimal (if s = "" then "0" else s))
      (list_size (int_range 0 40) (int_range 0 9)))

let gen_small = QCheck2.Gen.(map Nat.of_int (int_range 0 1_000_000))

let basics () =
  check_eq "zero" Nat.zero (Nat.of_int 0);
  Alcotest.(check bool) "is_zero" true (Nat.is_zero Nat.zero);
  Alcotest.(check (option int)) "to_int roundtrip" (Some 123456789)
    (Nat.to_int_opt (Nat.of_int 123456789));
  check_eq "decimal roundtrip"
    (Nat.of_decimal "340282366920938463463374607431768211455")
    (Nat.of_decimal "340282366920938463463374607431768211455");
  Alcotest.(check string) "to_decimal" "1000000000000000000000"
    (Nat.to_decimal (Nat.of_decimal "1000000000000000000000"))

let arithmetic () =
  let a = Nat.of_decimal "123456789012345678901234567890" in
  let b = Nat.of_decimal "987654321098765432109876543210" in
  Alcotest.(check string) "add" "1111111110111111111011111111100"
    (Nat.to_decimal (Nat.add a b));
  Alcotest.(check string) "sub" "864197532086419753208641975320"
    (Nat.to_decimal (Nat.sub b a));
  let product = Nat.mul a b in
  check_eq "mul/div consistency" a (Nat.div product b);
  check_eq "mul exact" Nat.zero (Nat.rem product b);
  let q, r = Nat.divmod b a in
  check_eq "divmod reconstruct" b (Nat.add (Nat.mul q a) r);
  Alcotest.(check bool) "r < a" true (Nat.compare r a < 0)

let shifts () =
  let x = Nat.of_decimal "123456789123456789" in
  check_eq "shift roundtrip" x (Nat.shift_right (Nat.shift_left x 67) 67);
  check_eq "shift_left = mul 2^k" (Nat.shift_left x 20)
    (Nat.mul x (Nat.of_int (1 lsl 20)));
  Alcotest.(check int) "bit_length of 2^100" 101
    (Nat.bit_length (Nat.shift_left Nat.one 100));
  Alcotest.(check bool) "testbit" true (Nat.testbit (Nat.shift_left Nat.one 100) 100);
  Alcotest.(check bool) "testbit off" false (Nat.testbit (Nat.shift_left Nat.one 100) 99)

let bytes_roundtrip () =
  let x = Nat.of_decimal "98765432109876543210" in
  check_eq "be roundtrip" x (Nat.of_bytes_be (Nat.to_bytes_be x ~len:32));
  check_eq "le roundtrip" x (Nat.of_bytes_le (Nat.to_bytes_le x ~len:32));
  Alcotest.(check string) "be of 0x0102" "258"
    (Nat.to_decimal (Nat.of_bytes_be "\x01\x02"))

let modular () =
  let p = Nat.of_int 1_000_003 in
  let a = Nat.of_decimal "999999999999999999" in
  let pow = Nat.mod_pow p a (Nat.sub p Nat.one) in
  (* Fermat: a^(p-1) = 1 mod p for prime p and a not divisible by p. *)
  check_eq "fermat little theorem" Nat.one pow;
  let inv = Nat.mod_inv_prime p (Nat.of_int 12345) in
  check_eq "modular inverse" Nat.one (Nat.rem (Nat.mul inv (Nat.of_int 12345)) p)

let low_bits () =
  let x = Nat.of_decimal "123456789123456789123456789" in
  check_eq "low_bits = rem 2^k" (Nat.low_bits x 37)
    (Nat.rem x (Nat.shift_left Nat.one 37))

let error_cases () =
  Alcotest.check_raises "sub underflow" (Invalid_argument "Nat.sub: underflow")
    (fun () -> ignore (Nat.sub Nat.one Nat.two));
  Alcotest.check_raises "negative of_int" (Invalid_argument "Nat.of_int: negative")
    (fun () -> ignore (Nat.of_int (-1)));
  Alcotest.check_raises "to_bytes overflow"
    (Invalid_argument "Nat.to_bytes_be: does not fit") (fun () ->
      ignore (Nat.to_bytes_be (Nat.of_decimal "100000000000") ~len:4));
  (try
     ignore (Nat.divmod Nat.one Nat.zero);
     Alcotest.fail "division by zero accepted"
   with Division_by_zero -> ())

let modular_edges () =
  (* mod 1 is always zero. *)
  check_eq "mod_pow m=1" Nat.zero (Nat.mod_pow Nat.one (Nat.of_int 7) (Nat.of_int 9));
  (* x^0 = 1. *)
  check_eq "x^0" Nat.one (Nat.mod_pow (Nat.of_int 97) (Nat.of_int 12) Nat.zero);
  (* 0^x = 0 for x > 0. *)
  check_eq "0^x" Nat.zero (Nat.mod_pow (Nat.of_int 97) Nat.zero (Nat.of_int 5));
  check_eq "mod_add wraps" (Nat.of_int 1)
    (Nat.mod_add (Nat.of_int 7) (Nat.of_int 4) (Nat.of_int 4));
  check_eq "mod_sub wraps" (Nat.of_int 5)
    (Nat.mod_sub (Nat.of_int 7) (Nat.of_int 2) (Nat.of_int 4))

let shift_edges () =
  check_eq "shift_left 0" (Nat.of_int 5) (Nat.shift_left (Nat.of_int 5) 0);
  check_eq "shift_right everything" Nat.zero (Nat.shift_right (Nat.of_int 5) 100);
  check_eq "low_bits of zero" Nat.zero (Nat.low_bits Nat.zero 13);
  Alcotest.(check int) "bit_length zero" 0 (Nat.bit_length Nat.zero);
  Alcotest.(check bool) "testbit beyond" false (Nat.testbit (Nat.of_int 1) 200)

let suite =
  [
    ( "nat",
      [
        t "basics" basics;
        t "error cases" error_cases;
        t "modular edges" modular_edges;
        t "shift edges" shift_edges;
        t "arithmetic" arithmetic;
        t "shifts" shifts;
        t "bytes roundtrip" bytes_roundtrip;
        t "modular arithmetic" modular;
        t "low_bits" low_bits;
        qt "add commutes" QCheck2.Gen.(pair gen_nat gen_nat) (fun (a, b) ->
            Nat.equal (Nat.add a b) (Nat.add b a));
        qt "add then sub" QCheck2.Gen.(pair gen_nat gen_nat) (fun (a, b) ->
            Nat.equal (Nat.sub (Nat.add a b) b) a);
        qt "mul distributes" QCheck2.Gen.(triple gen_nat gen_nat gen_nat)
          (fun (a, b, c) ->
            Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)));
        qt "divmod reconstructs" QCheck2.Gen.(pair gen_nat gen_small) (fun (a, d) ->
            Nat.is_zero d
            ||
            let q, r = Nat.divmod a d in
            Nat.equal a (Nat.add (Nat.mul q d) r) && Nat.compare r d < 0);
        qt "decimal roundtrip" gen_nat (fun a ->
            Nat.equal a (Nat.of_decimal (Nat.to_decimal a)));
        qt "bytes roundtrip" gen_nat (fun a ->
            Nat.bit_length a > 8 * 64
            || Nat.equal a (Nat.of_bytes_le (Nat.to_bytes_le a ~len:64)));
        qt "int roundtrip" QCheck2.Gen.(int_range 0 max_int) (fun i ->
            Nat.to_int_opt (Nat.of_int i) = Some i);
      ] );
  ]
