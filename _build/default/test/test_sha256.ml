(* SHA-256 against FIPS/NIST known-answer vectors; since the constants
   are derived at runtime, these vectors transitively pin the whole
   constant-derivation path. *)

open Algorand_crypto

let t name f = Alcotest.test_case name `Quick f
let qt ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let vector msg expected () = Alcotest.(check string) "digest" expected (Sha256.digest_hex msg)

let nist_vectors =
  [
    ("empty", "", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "two-block",
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
  ]

let million_a () =
  (* The classic 1,000,000 x 'a' vector. *)
  Alcotest.(check string) "digest"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_hex (String.make 1_000_000 'a'))

let padding_boundaries () =
  (* Lengths around the 55/56/64-byte padding boundaries must not crash
     and must be distinct. *)
  let lengths = [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128; 129 ] in
  let digests = List.map (fun n -> Sha256.digest (String.make n 'x')) lengths in
  let distinct = List.sort_uniq compare digests in
  Alcotest.(check int) "all distinct" (List.length lengths) (List.length distinct)

let length_is_32 () =
  Alcotest.(check int) "digest length" 32 (String.length (Sha256.digest "anything"))

let hex_roundtrip () =
  let d = Sha256.digest "x" in
  Alcotest.(check string) "roundtrip" d (Hex.to_string (Hex.of_string d))

let hmac_self_consistency () =
  (* HMAC distinguishes keys and messages; same inputs agree. *)
  let t1 = Hmac.sha256 ~key:"k1" "msg" in
  Alcotest.(check string) "deterministic" t1 (Hmac.sha256 ~key:"k1" "msg");
  Alcotest.(check bool) "key matters" false (String.equal t1 (Hmac.sha256 ~key:"k2" "msg"));
  Alcotest.(check bool) "msg matters" false (String.equal t1 (Hmac.sha256 ~key:"k1" "msh"));
  (* Long keys are hashed down to block size first. *)
  let long_key = String.make 200 'k' in
  Alcotest.(check string) "long key = hashed key"
    (Hmac.sha256 ~key:long_key "m")
    (Hmac.sha256 ~key:(Sha256.digest long_key) "m")

let drbg_deterministic () =
  let d1 = Drbg.create ~seed:"s" and d2 = Drbg.create ~seed:"s" in
  Alcotest.(check string) "same stream" (Drbg.random_bytes d1 100) (Drbg.random_bytes d2 100);
  let d3 = Drbg.create ~seed:"other" in
  Alcotest.(check bool) "different seed differs" false
    (String.equal (Drbg.random_bytes (Drbg.create ~seed:"s") 100) (Drbg.random_bytes d3 100))

let drbg_int_bounds () =
  let d = Drbg.create ~seed:"bounds" in
  for _ = 1 to 1000 do
    let v = Drbg.random_int d 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of range"
  done

let suite =
  [
    ( "sha256",
      List.map (fun (name, msg, expected) -> t name (vector msg expected)) nist_vectors
      @ [
          t "million 'a'" million_a;
          t "padding boundaries" padding_boundaries;
          t "digest length" length_is_32;
          t "hex roundtrip" hex_roundtrip;
          t "hmac self-consistency" hmac_self_consistency;
          t "drbg deterministic" drbg_deterministic;
          t "drbg int bounds" drbg_int_bounds;
          qt "incremental vs concat" QCheck2.Gen.(pair string string) (fun (a, b) ->
              String.equal (Sha256.digest_concat [ a; b ]) (Sha256.digest (a ^ b)));
        ] );
  ]
