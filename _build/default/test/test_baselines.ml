(* The Nakamoto (Bitcoin-style) baseline used for the section 10.2
   throughput comparison. *)

module Nakamoto = Algorand_baselines.Nakamoto

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let short_config =
  {
    Nakamoto.bitcoin_default with
    duration_s = 10.0 *. 86_400.0 (* 10 simulated days *);
    rng_seed = 11;
  }

let block_interval_matches () =
  let r = Nakamoto.run short_config in
  (* ~600s between main-chain blocks (a bit above because of orphans). *)
  Alcotest.(check bool)
    (Printf.sprintf "interval %.0fs near 600" r.mean_interval_s)
    true
    (r.mean_interval_s > 500.0 && r.mean_interval_s < 750.0)

let confirmation_takes_an_hour () =
  let r = Nakamoto.run short_config in
  (* Six confirmations at ten minutes each: the paper's "about an
     hour" claim for Bitcoin. *)
  Alcotest.(check bool)
    (Printf.sprintf "confirmation %.0fs near 3600" r.mean_confirmation_latency_s)
    true
    (r.mean_confirmation_latency_s > 2800.0 && r.mean_confirmation_latency_s < 4600.0)

let throughput_ballpark () =
  let r = Nakamoto.run short_config in
  (* 1 MB / 10 min = 6 MB/hour (section 10.2). *)
  let mb_per_hour = r.throughput_bytes_per_hour /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.1f MB/h near 6" mb_per_hour)
    true
    (mb_per_hour > 4.5 && mb_per_hour < 7.0)

let orphans_exist_but_rare () =
  let r = Nakamoto.run short_config in
  Alcotest.(check bool) "found blocks" true (r.blocks_found > 1000);
  (* With 15s propagation vs 600s intervals, a few percent fork rate. *)
  Alcotest.(check bool)
    (Printf.sprintf "orphan rate %.3f" r.orphan_rate)
    true
    (r.orphan_rate < 0.15)

let faster_blocks_mean_more_forks () =
  (* The trade-off that motivates the paper: shortening the block
     interval (to cut latency) inflates the fork/orphan rate. *)
  let slow = Nakamoto.run short_config in
  let fast =
    Nakamoto.run { short_config with mean_block_interval_s = 30.0; duration_s = 86_400.0 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "orphans %.3f (30s blocks) > %.3f (600s blocks)" fast.orphan_rate
       slow.orphan_rate)
    true
    (fast.orphan_rate > 2.0 *. slow.orphan_rate)

let deterministic () =
  let a = Nakamoto.run { short_config with duration_s = 86_400.0 } in
  let b = Nakamoto.run { short_config with duration_s = 86_400.0 } in
  Alcotest.(check int) "same blocks" a.blocks_found b.blocks_found;
  Alcotest.(check int) "same main chain" a.main_chain_length b.main_chain_length

module Fixed_bft = Algorand_baselines.Fixed_bft

let fixed_bft_latency () =
  let r = Fixed_bft.run Fixed_bft.honey_badger_default in
  Alcotest.(check bool) "not halted" false r.halted;
  (* The paper quotes ~5 minutes for HoneyBadger with 10 MB blocks and
     104 servers; our model should land in the same ballpark. *)
  Alcotest.(check bool)
    (Printf.sprintf "latency %.0fs in minutes range" r.mean_round_latency_s)
    true
    (r.mean_round_latency_s > 120.0 && r.mean_round_latency_s < 900.0);
  (* ~200 KB/s of ledger data. *)
  let kbps = r.throughput_bytes_per_hour /. 3600.0 /. 1000.0 in
  Alcotest.(check bool) (Printf.sprintf "throughput %.0f KB/s" kbps) true
    (kbps > 10.0 && kbps < 500.0)

let fixed_bft_dos_halts () =
  (* The fixed-server weakness: silencing a bit over a third of the
     known servers halts the system completely; Algorand instead
     re-draws a secret committee every step. *)
  let c = Fixed_bft.honey_badger_default in
  let attacked = Fixed_bft.run { c with dos_servers = (c.servers / 3) + 2 } in
  Alcotest.(check bool) "halted" true attacked.halted;
  Alcotest.(check int) "no rounds" 0 attacked.committed_rounds;
  (* Just below the threshold it keeps going. *)
  let survives = Fixed_bft.run { c with dos_servers = c.servers / 4 } in
  Alcotest.(check bool) "survives below threshold" false survives.halted

let fixed_bft_quadratic_traffic () =
  let traffic n =
    (Fixed_bft.run { Fixed_bft.honey_badger_default with servers = n; block_bytes = 0 })
      .bytes_per_server_per_round
  in
  let t50 = traffic 50 and t200 = traffic 200 in
  Alcotest.(check bool)
    (Printf.sprintf "vote traffic grows with committee (%.0f -> %.0f)" t50 t200)
    true
    (t200 > 3.0 *. t50)

let suite =
  [
    ( "baselines",
      [
        t "fixed BFT latency/throughput" fixed_bft_latency;
        t "fixed BFT halts under DoS" fixed_bft_dos_halts;
        t "fixed BFT vote traffic grows" fixed_bft_quadratic_traffic;
        ts "block interval" block_interval_matches;
        ts "confirmation latency ~1 hour" confirmation_takes_an_hour;
        ts "throughput ~6 MB/hour" throughput_ballpark;
        ts "orphans exist but rare" orphans_exist_but_rare;
        ts "faster blocks, more forks" faster_blocks_mean_more_forks;
        t "deterministic" deterministic;
      ] );
  ]
