(* Ledger building blocks: wire format, transactions, balances,
   transaction pool, blocks, genesis, storage sharding. *)

open Algorand_crypto
open Algorand_ledger

let t name f = Alcotest.test_case name `Quick f
let qt ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let sig_scheme = Signature_scheme.sim
let signer_of seed = sig_scheme.generate ~seed
let alice_signer, alice = signer_of "alice"
let _bob_signer, bob = signer_of "bob"

let wire_roundtrip () =
  let fields = [ "a"; ""; String.make 1000 'x'; "\x00\xff" ] in
  Alcotest.(check (list string)) "roundtrip" fields (Wire.split (Wire.concat fields));
  Alcotest.(check int) "u64 read" 123456 (Wire.read_u64 (Wire.u64 123456) 0)

let wire_rejects_truncation () =
  let s = Wire.concat [ "hello" ] in
  Alcotest.check_raises "truncated" (Invalid_argument "Wire.split: truncated field")
    (fun () -> ignore (Wire.split (String.sub s 0 (String.length s - 1))))

let tx_roundtrip () =
  let tx =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:42 ~nonce:0
  in
  (match Transaction.deserialize (Transaction.serialize tx) with
  | Some tx' -> Alcotest.(check string) "id stable" (Transaction.id tx) (Transaction.id tx')
  | None -> Alcotest.fail "deserialize failed");
  Alcotest.(check bool) "signature valid" true
    (Transaction.verify_signature ~scheme:sig_scheme tx);
  let forged = { tx with amount = 43 } in
  Alcotest.(check bool) "forgery rejected" false
    (Transaction.verify_signature ~scheme:sig_scheme forged)

let balances_flow () =
  let b = Balances.credit Balances.empty alice 100 in
  Alcotest.(check int) "credited" 100 (Balances.balance b alice);
  Alcotest.(check int) "total" 100 (Balances.total b);
  let tx =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:30 ~nonce:0
  in
  match Balances.apply_tx b tx with
  | Error _ -> Alcotest.fail "valid tx rejected"
  | Ok b' ->
    Alcotest.(check int) "alice debited" 70 (Balances.balance b' alice);
    Alcotest.(check int) "bob credited" 30 (Balances.balance b' bob);
    Alcotest.(check int) "total conserved" 100 (Balances.total b');
    Alcotest.(check int) "nonce advanced" 1 (Balances.nonce b' alice);
    (* Replay: same nonce again must fail. *)
    (match Balances.apply_tx b' tx with
    | Error (`Bad_nonce _) -> ()
    | _ -> Alcotest.fail "replay accepted");
    (* Overdraft. *)
    let big =
      Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:500
        ~nonce:1
    in
    (match Balances.apply_tx b' big with
    | Error (`Insufficient_balance _) -> ()
    | _ -> Alcotest.fail "overdraft accepted")

let double_spend_rejected () =
  (* The core double-spending scenario: two transactions spending the
     same balance; only the first applies. *)
  let b = Balances.credit Balances.empty alice 10 in
  let spend1 =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:10 ~nonce:0
  in
  let spend2 =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:alice ~amount:10
      ~nonce:0
  in
  match Balances.apply_all b [ spend1; spend2 ] with
  | Ok _ -> Alcotest.fail "double spend accepted"
  | Error (`Bad_nonce _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Balances.pp_tx_error e

let txpool_dedup_and_take () =
  let pool = Txpool.create () in
  let tx n =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:1 ~nonce:n
  in
  Alcotest.(check bool) "first add" true (Txpool.add pool (tx 0));
  Alcotest.(check bool) "duplicate" false (Txpool.add pool (tx 0));
  ignore (Txpool.add pool (tx 1));
  ignore (Txpool.add pool (tx 2));
  Alcotest.(check int) "size" 3 (Txpool.size pool);
  let one_tx_bytes = Transaction.size_bytes (tx 0) in
  let taken = Txpool.take pool ~max_bytes:(2 * one_tx_bytes) in
  Alcotest.(check int) "took two (byte limit)" 2 (List.length taken);
  Alcotest.(check int) "one left" 1 (Txpool.size pool);
  (* FIFO order. *)
  Alcotest.(check (list int)) "fifo" [ 0; 1 ]
    (List.map (fun (x : Transaction.t) -> x.nonce) taken);
  Txpool.remove_committed pool [ tx 2 ];
  Alcotest.(check int) "committed removed" 0 (Txpool.size pool)

let block_hash_sensitivity () =
  let e = Block.empty ~round:3 ~prev_hash:(String.make 32 'p') in
  Alcotest.(check bool) "is_empty" true (Block.is_empty e);
  let e' = Block.empty ~round:4 ~prev_hash:(String.make 32 'p') in
  Alcotest.(check bool) "round changes hash" false
    (String.equal (Block.hash e) (Block.hash e'));
  let padded = { e with padding = 100 } in
  Alcotest.(check bool) "padding changes hash" false
    (String.equal (Block.hash e) (Block.hash padded));
  Alcotest.(check int) "padding counts in size" (Block.size_bytes e + 100)
    (Block.size_bytes padded);
  (* Empty blocks are deterministic: everyone computes the same hash. *)
  Alcotest.(check string) "deterministic empty"
    (Block.hash (Block.empty ~round:3 ~prev_hash:(String.make 32 'p')))
    (Block.hash e)

let genesis_checks () =
  let g = Genesis.make [ (alice, 60); (bob, 40) ] in
  Alcotest.(check int) "total" 100 (Balances.total g.balances);
  Alcotest.(check int) "alice stake" 60 (Balances.balance g.balances alice);
  Alcotest.(check int) "round 0" 0 (Block.round g.block);
  Alcotest.(check bool) "seed nonempty" true (String.length g.seed0 = 32);
  (* Deterministic given the same participants. *)
  let g' = Genesis.make [ (alice, 60); (bob, 40) ] in
  Alcotest.(check string) "deterministic" (Genesis.hash g) (Genesis.hash g');
  Alcotest.check_raises "empty allocations" (Invalid_argument
    "Genesis.make: no initial accounts") (fun () -> ignore (Genesis.make []));
  Alcotest.check_raises "zero stake" (Invalid_argument
    "Genesis.make: non-positive stake") (fun () -> ignore (Genesis.make [ (alice, 0) ]))

let storage_sharding () =
  Alcotest.(check bool) "single shard stores all" true
    (Storage.stores ~shards:1 ~pk:alice ~round:17);
  (* Across 10 shards each key stores ~1/10 of rounds. *)
  let stored = ref 0 in
  for round = 0 to 999 do
    if Storage.stores ~shards:10 ~pk:alice ~round then incr stored
  done;
  Alcotest.(check int) "exactly a tenth" 100 !stored;
  Alcotest.(check (float 0.01)) "cost" 130_000.0
    (Storage.per_block_cost_bytes ~shards:10 ~block_bytes:1_000_000
       ~certificate_bytes:300_000)

let suite =
  [
    ( "ledger",
      [
        t "wire roundtrip" wire_roundtrip;
        t "wire rejects truncation" wire_rejects_truncation;
        t "tx roundtrip + signatures" tx_roundtrip;
        t "balances flow" balances_flow;
        t "double spend rejected" double_spend_rejected;
        t "txpool dedup/take" txpool_dedup_and_take;
        t "block hash sensitivity" block_hash_sensitivity;
        t "genesis" genesis_checks;
        t "storage sharding" storage_sharding;
        qt "tx serialize roundtrips"
          QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 1000))
          (fun (amount, nonce) ->
            let tx =
              Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount
                ~nonce
            in
            match Transaction.deserialize (Transaction.serialize tx) with
            | Some tx' -> Transaction.id tx = Transaction.id tx'
            | None -> false);
      ] );
  ]
