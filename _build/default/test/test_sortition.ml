(* Cryptographic sortition (Algorithms 1-2): prove/verify roundtrips,
   forgery rejection, the Sybil-splitting invariance of section 5.1,
   and proposer priorities (section 6). *)

open Algorand_crypto
open Algorand_sortition

let t name f = Alcotest.test_case name `Quick f

let scheme = Vrf.sim

let mk_user seed = scheme.generate ~seed

let select ~seed_str ~tau ~w ~total (prover : Vrf.prover) =
  Sortition.select ~prover ~seed:seed_str ~tau ~role:"role" ~w ~total_weight:total

let roundtrip () =
  let prover, pk = mk_user "u1" in
  let sel = select ~seed_str:"seed" ~tau:10.0 ~w:500 ~total:1000 prover in
  let j =
    Sortition.verify ~scheme ~pk ~vrf_hash:sel.vrf_hash ~vrf_proof:sel.vrf_proof
      ~seed:"seed" ~tau:10.0 ~role:"role" ~w:500 ~total_weight:1000
  in
  Alcotest.(check int) "verify returns same j" sel.j j;
  (* Half the stake at tau=10 should yield about 5 selections. *)
  Alcotest.(check bool) "selected a plausible number" true (sel.j >= 0 && sel.j <= 20)

let verify_rejects_wrong_context () =
  let prover, pk = mk_user "u1" in
  let _, pk2 = mk_user "u2" in
  let sel = select ~seed_str:"seed" ~tau:10.0 ~w:500 ~total:1000 prover in
  let verify ?(pk = pk) ?(seed = "seed") ?(role = "role") ?(hash = sel.vrf_hash) () =
    Sortition.verify ~scheme ~pk ~vrf_hash:hash ~vrf_proof:sel.vrf_proof ~seed ~tau:10.0
      ~role ~w:500 ~total_weight:1000
  in
  Alcotest.(check bool) "accepts valid" true (verify () > 0 || sel.j = 0);
  Alcotest.(check int) "wrong pk" 0 (verify ~pk:pk2 ());
  Alcotest.(check int) "wrong seed" 0 (verify ~seed:"other" ());
  Alcotest.(check int) "wrong role" 0 (verify ~role:"other" ());
  Alcotest.(check int) "forged hash" 0 (verify ~hash:(Sha256.digest "forged") ())

let weight_zero_never_selected () =
  for i = 0 to 20 do
    let prover, _ = mk_user (Printf.sprintf "u%d" i) in
    let sel = select ~seed_str:"s" ~tau:100.0 ~w:0 ~total:1000 prover in
    Alcotest.(check int) "never selected" 0 sel.j
  done

let expected_committee_size () =
  (* Sum of j over all users should be near tau. *)
  let users = 200 and w = 50 and tau = 30.0 in
  let total = users * w in
  let sum = ref 0 in
  for i = 0 to users - 1 do
    let prover, _ = mk_user (Printf.sprintf "c%d" i) in
    let sel = select ~seed_str:"round-seed" ~tau ~w ~total prover in
    sum := !sum + sel.j
  done;
  (* tau = 30, sigma ~ 5.5; accept +-4 sigma. *)
  Alcotest.(check bool)
    (Printf.sprintf "committee size %d near tau" !sum)
    true
    (!sum > 8 && !sum < 52)

let sybil_splitting_distribution () =
  (* Section 5.1: splitting weight among pseudonyms does not change the
     *distribution* of selected sub-users. Compare empirical means of
     one w=100 user vs 10 w=10 Sybils across many seeds. *)
  let tau = 20.0 and total = 1000 in
  let seeds = 300 in
  let single = ref 0 and split = ref 0 in
  let whole_prover, _ = mk_user "whale" in
  let sybils = List.init 10 (fun i -> fst (mk_user (Printf.sprintf "sybil%d" i))) in
  for s = 0 to seeds - 1 do
    let seed_str = Printf.sprintf "seed%d" s in
    single := !single + (select ~seed_str ~tau ~w:100 ~total whole_prover).j;
    List.iter
      (fun p -> split := !split + (select ~seed_str ~tau ~w:10 ~total p).j)
      sybils
  done;
  let m1 = float_of_int !single /. float_of_int seeds in
  let m2 = float_of_int !split /. float_of_int seeds in
  (* Both means should approximate w * tau / W = 2.0. *)
  Alcotest.(check bool) (Printf.sprintf "single mean %.2f" m1) true (Float.abs (m1 -. 2.0) < 0.4);
  Alcotest.(check bool) (Printf.sprintf "split mean %.2f" m2) true (Float.abs (m2 -. 2.0) < 0.4)

let selection_proportional_to_weight () =
  (* A user with 4x the stake should be selected ~4x as often. *)
  let tau = 10.0 and total = 10_000 in
  let seeds = 400 in
  let small = ref 0 and big = ref 0 in
  let p_small, _ = mk_user "small" and p_big, _ = mk_user "big" in
  for s = 0 to seeds - 1 do
    let seed_str = Printf.sprintf "w%d" s in
    small := !small + (select ~seed_str ~tau ~w:250 ~total p_small).j;
    big := !big + (select ~seed_str ~tau ~w:1000 ~total p_big).j
  done;
  let ratio = float_of_int !big /. float_of_int (max 1 !small) in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f near 4" ratio) true
    (ratio > 2.5 && ratio < 6.0)

let hash_fraction_range () =
  let d = Drbg.create ~seed:"hf" in
  for _ = 1 to 200 do
    let f = Sortition.hash_fraction (Drbg.random_bytes d 32) in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "fraction out of range"
  done;
  Alcotest.(check (float 0.0)) "all-zero hash" 0.0
    (Sortition.hash_fraction (String.make 32 '\000'))

let priorities () =
  let vrf_hash = Sha256.digest "some-sortition-hash" in
  Alcotest.(check (option string)) "j=0 has no priority" None
    (Sortition.best_priority ~vrf_hash ~j:0);
  let p1 = Option.get (Sortition.best_priority ~vrf_hash ~j:1) in
  let p5 = Option.get (Sortition.best_priority ~vrf_hash ~j:5) in
  (* More sub-users can only raise the best priority. *)
  Alcotest.(check bool) "monotone in j" true (String.compare p5 p1 >= 0);
  Alcotest.(check string) "deterministic" p5
    (Option.get (Sortition.best_priority ~vrf_hash ~j:5))

let suite =
  [
    ( "sortition",
      [
        t "select/verify roundtrip" roundtrip;
        t "verify rejects wrong context" verify_rejects_wrong_context;
        t "zero weight never selected" weight_zero_never_selected;
        t "expected committee size" expected_committee_size;
        t "sybil splitting invariance" sybil_splitting_distribution;
        t "selection proportional to weight" selection_proportional_to_weight;
        t "hash fraction in [0,1)" hash_fraction_range;
        t "proposer priorities" priorities;
      ] );
  ]
