(* The committee-size analysis behind Figure 3 and section 7.5. *)

open Algorand_sortition

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let violation_monotone_in_tau () =
  (* More committee members -> lower violation probability. *)
  let h = 0.8 in
  let v tau = snd (Committee.best_threshold ~h ~tau) in
  let v500 = v 500.0 and v1000 = v 1000.0 and v2000 = v 2000.0 in
  Alcotest.(check bool) "500 > 1000" true (v500 > v1000);
  Alcotest.(check bool) "1000 > 2000" true (v1000 > v2000)

let liveness_vs_safety_tradeoff () =
  (* Raising T hurts liveness and helps safety. *)
  let h = 0.8 and tau = 1000.0 in
  Alcotest.(check bool) "liveness worsens with T" true
    (Committee.liveness_failure ~h ~tau ~t:0.75 > Committee.liveness_failure ~h ~tau ~t:0.65);
  Alcotest.(check bool) "safety improves with T" true
    (Committee.safety_failure ~h ~tau ~t:0.75 < Committee.safety_failure ~h ~tau ~t:0.65)

let paper_point_h80 () =
  (* Figure 4 / section 7.5: at h = 80%, tau_step = 2000 with
     T = 0.685 keeps the violation probability at most ~5e-9. *)
  let v = Committee.violation_probability ~h:0.8 ~tau:2000.0 ~t:0.685 in
  Alcotest.(check bool)
    (Printf.sprintf "violation %.3g <= 5e-9" v)
    true (v <= 5e-9);
  (* And the required committee size at h=0.8 is in the ballpark of
     2000 (the paper marks the star there). *)
  let tau, _ = Committee.required_committee_size ~h:0.8 () in
  Alcotest.(check bool) (Printf.sprintf "required tau %d" tau) true (tau > 800 && tau <= 2200)

let committee_grows_as_h_falls () =
  (* The Figure 3 shape: smaller honest fraction -> larger committee. *)
  let tau_at h = fst (Committee.required_committee_size ~h ()) in
  let t80 = tau_at 0.80 and t84 = tau_at 0.84 and t90 = tau_at 0.90 in
  Alcotest.(check bool)
    (Printf.sprintf "tau(0.80)=%d > tau(0.84)=%d > tau(0.90)=%d" t80 t84 t90)
    true
    (t80 > t84 && t84 > t90)

let rejects_h_below_two_thirds () =
  Alcotest.check_raises "h <= 2/3 rejected" (Invalid_argument
    "Committee.required_committee_size: need h > 2/3") (fun () ->
      ignore (Committee.required_committee_size ~h:0.6 ()))

let final_step_parameters () =
  (* tau_final = 10000 / T_final = 0.74 keep the final-step *safety*
     failure overwhelmingly small (section 7.5). *)
  let v = Committee.final_step_violation ~h:0.8 ~tau:10_000.0 ~t:0.74 in
  Alcotest.(check bool) (Printf.sprintf "final violation %.3g" v) true (v < 1e-12)

let suite =
  [
    ( "committee",
      [
        t "violation monotone in tau" violation_monotone_in_tau;
        t "liveness/safety tradeoff" liveness_vs_safety_tradeoff;
        ts "paper point at h=80%" paper_point_h80;
        ts "figure 3 shape" committee_grows_as_h_falls;
        t "rejects h <= 2/3" rejects_h_below_two_thirds;
        t "final step parameters" final_step_parameters;
      ] );
  ]
