(* The chain store: tree structure, fork tracking, seeds, finality. *)

open Algorand_crypto
open Algorand_ledger

let t name f = Alcotest.test_case name `Quick f

let sig_scheme = Signature_scheme.sim
let alice_signer, alice = sig_scheme.generate ~seed:"alice"
let _, bob = sig_scheme.generate ~seed:"bob"

let genesis () = Genesis.make [ (alice, 100); (bob, 100) ]

(* A minimal non-empty block extending [parent]. *)
let block_on (parent : Chain.entry) ?(txs = []) ?(stamp = 1.0) () : Block.t =
  {
    Block.header =
      {
        round = parent.height + 1;
        prev_hash = parent.hash;
        timestamp = parent.block.header.timestamp +. stamp;
        seed = Sha256.digest ("seed" ^ string_of_int parent.height);
        seed_proof = "";
        proposer_pk = alice;
        proposer_vrf_hash = Sha256.digest "vrf";
        proposer_vrf_proof = "";
      };
    txs;
    padding = 0;
  }

let linear_growth () =
  let g = genesis () in
  let chain = Chain.create g in
  let e1 =
    match Chain.add chain (block_on (Chain.tip chain) ()) with
    | Ok e -> e
    | Error err -> Alcotest.failf "add failed: %a" Chain.pp_add_error err
  in
  Chain.set_tip chain e1.hash;
  Alcotest.(check int) "height" 1 e1.height;
  Alcotest.(check int) "size" 2 (Chain.size chain);
  let e2 =
    match Chain.add chain (block_on e1 ()) with Ok e -> e | Error _ -> assert false
  in
  Chain.set_tip chain e2.hash;
  Alcotest.(check int) "tip height" 2 (Chain.tip chain).height;
  (* Ancestry is tip-first down to genesis. *)
  let heights = List.map (fun (e : Chain.entry) -> e.height) (Chain.ancestry chain e2.hash) in
  Alcotest.(check (list int)) "ancestry order" [ 2; 1; 0 ] heights;
  Alcotest.(check bool) "descends from genesis" true
    (Chain.descends_from chain ~hash:e2.hash ~ancestor:chain.genesis_hash)

let transactions_update_balances () =
  let g = genesis () in
  let chain = Chain.create g in
  let tx =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:25 ~nonce:0
  in
  match Chain.add chain (block_on (Chain.tip chain) ~txs:[ tx ] ()) with
  | Error e -> Alcotest.failf "add: %a" Chain.pp_add_error e
  | Ok e1 ->
    Alcotest.(check int) "alice" 75 (Balances.balance e1.balances_after alice);
    Alcotest.(check int) "bob" 125 (Balances.balance e1.balances_after bob);
    (* An invalid (replayed) tx must be rejected at add time. *)
    (match Chain.add chain (block_on e1 ~txs:[ tx ] ()) with
    | Error (`Invalid_tx _) -> ()
    | _ -> Alcotest.fail "replayed tx in block accepted")

let add_errors () =
  let g = genesis () in
  let chain = Chain.create g in
  let orphan =
    { (block_on (Chain.tip chain) ()) with
      header = { (block_on (Chain.tip chain) ()).header with prev_hash = String.make 32 'z' } }
  in
  (match Chain.add chain orphan with
  | Error `Unknown_parent -> ()
  | _ -> Alcotest.fail "orphan accepted");
  let wrong_round =
    { (block_on (Chain.tip chain) ()) with
      header = { (block_on (Chain.tip chain) ()).header with round = 7 } }
  in
  (match Chain.add chain wrong_round with
  | Error (`Wrong_round (1, 7)) -> ()
  | _ -> Alcotest.fail "wrong round accepted");
  let b = block_on (Chain.tip chain) () in
  (match Chain.add chain b with Ok _ -> () | Error _ -> Alcotest.fail "valid rejected");
  match Chain.add chain b with
  | Error `Duplicate -> ()
  | _ -> Alcotest.fail "duplicate accepted"

let forks_and_longest () =
  let g = genesis () in
  let chain = Chain.create g in
  let tip0 = Chain.tip chain in
  (* Two children of genesis: fork A (3 blocks), fork B (1 block). *)
  let a1 = Result.get_ok (Chain.add chain (block_on tip0 ~stamp:1.0 ())) in
  let b1 = Result.get_ok (Chain.add chain (block_on tip0 ~stamp:2.0 ())) in
  let a2 = Result.get_ok (Chain.add chain (block_on a1 ())) in
  let a3 = Result.get_ok (Chain.add chain (block_on a2 ())) in
  Alcotest.(check int) "two leaves" 2 (List.length (Chain.leaves chain));
  let longest = Chain.longest_leaf chain in
  Alcotest.(check string) "longest is fork A" (Hex.of_string a3.hash)
    (Hex.of_string longest.hash);
  Alcotest.(check bool) "b1 not on a-path" false
    (Chain.descends_from chain ~hash:a3.hash ~ancestor:b1.hash);
  (* ancestor_at walks the right path. *)
  (match Chain.ancestor_at chain ~hash:a3.hash ~height:1 with
  | Some e -> Alcotest.(check string) "ancestor at 1" (Hex.of_string a1.hash) (Hex.of_string e.hash)
  | None -> Alcotest.fail "ancestor_at failed");
  Alcotest.(check bool) "ancestor above height" true
    (Chain.ancestor_at chain ~hash:a1.hash ~height:3 = None)

let finality_marking () =
  let g = genesis () in
  let chain = Chain.create g in
  let e1 = Result.get_ok (Chain.add chain (block_on (Chain.tip chain) ())) in
  Alcotest.(check bool) "not final by default" false e1.final;
  Chain.mark_final chain e1.hash;
  Alcotest.(check bool) "final after marking" true
    (match Chain.find chain e1.hash with Some e -> e.final | None -> false);
  Alcotest.check_raises "unknown hash" (Invalid_argument "Chain.mark_final: unknown block")
    (fun () -> Chain.mark_final chain "nope")

let seed_derivation () =
  let g = genesis () in
  let chain = Chain.create g in
  Alcotest.(check string) "genesis establishes seed0" (Hex.of_string g.seed0)
    (Hex.of_string (Chain.genesis_entry chain).seed);
  (* A block with an explicit seed establishes it. *)
  let b = block_on (Chain.tip chain) () in
  let e1 = Result.get_ok (Chain.add chain b) in
  Alcotest.(check string) "explicit seed" (Hex.of_string b.header.seed)
    (Hex.of_string e1.seed);
  (* An empty block derives H(parent_seed || round). *)
  let empty = Block.empty ~round:2 ~prev_hash:e1.hash in
  let e2 = Result.get_ok (Chain.add chain empty) in
  Alcotest.(check bool) "empty-block seed is derived and fresh" true
    (not (String.equal e2.seed e1.seed) && String.length e2.seed = 32)

let suite =
  [
    ( "chain",
      [
        t "linear growth" linear_growth;
        t "transactions update balances" transactions_update_balances;
        t "add errors" add_errors;
        t "forks and longest leaf" forks_and_longest;
        t "finality marking" finality_marking;
        t "seed derivation" seed_derivation;
      ] );
  ]
