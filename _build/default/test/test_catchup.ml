(* Bootstrapping new users from blocks + certificates (section 8.3). *)

module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Catchup = Algorand_core.Catchup
module Certificate = Algorand_core.Certificate
module Chain = Algorand_ledger.Chain
module Balances = Algorand_ledger.Balances
module Transaction = Algorand_ledger.Transaction
open Algorand_crypto

let ts name f = Alcotest.test_case name `Slow f

let config =
  {
    Harness.default with
    users = 16;
    rounds = 3;
    block_bytes = 20_000;
    tx_rate_per_s = 2.0;
    rng_seed = 21;
  }

(* Run a network, then bootstrap a fresh user from one node's history. *)
let run_and_collect () =
  let r = Harness.run config in
  (* Find a node that holds certificates for every round. *)
  let source =
    Array.to_list r.harness.nodes
    |> List.find_opt (fun n ->
           List.for_all
             (fun round -> Node.certificate n ~round <> None)
             [ 1; 2; 3 ])
  in
  match source with
  | None -> Alcotest.fail "no node assembled certificates for all rounds"
  | Some node -> (r, node, Catchup.collect node ~up_to_round:3)

let replay items ?final_certificate (r : Harness.result) =
  Catchup.replay ~params:config.params ~sig_scheme:Signature_scheme.sim
    ~vrf_scheme:Vrf.sim ~genesis:r.harness.genesis ?final_certificate items

let successful_catchup () =
  let r, node, items = run_and_collect () in
  Alcotest.(check int) "three certified blocks" 3 (List.length items);
  match replay items r with
  | Error e -> Alcotest.failf "replay failed: %a" Catchup.pp_error e
  | Ok chain ->
    let tip = Chain.tip chain in
    Alcotest.(check int) "caught up to round 3" 3 tip.height;
    Alcotest.(check string) "same tip as the network"
      (Hex.of_string (Chain.tip (Node.chain node)).hash)
      (Hex.of_string tip.hash);
    (* Balances replayed identically. *)
    Alcotest.(check int) "total stake"
      (config.users * config.stake_per_user)
      (Balances.total tip.balances_after)

let final_certificate_proves_safety () =
  let r, node, items = run_and_collect () in
  match Node.final_certificate node ~round:3 with
  | None -> Alcotest.fail "no final certificate for round 3"
  | Some fc -> (
    match replay items ~final_certificate:fc r with
    | Error e -> Alcotest.failf "replay failed: %a" Catchup.pp_error e
    | Ok chain ->
      Alcotest.(check bool) "tip marked final" true (Chain.tip chain).final)

let tampered_history_rejected () =
  let r, _node, items = run_and_collect () in
  (* Swap one certificate's block for the empty block: hash mismatch. *)
  let tampered =
    List.mapi
      (fun i (item : Catchup.item) ->
        if i = 1 then
          {
            item with
            block =
              Algorand_ledger.Block.empty
                ~round:(Algorand_ledger.Block.round item.block)
                ~prev_hash:(Algorand_ledger.Block.prev_hash item.block);
          }
        else item)
      items
  in
  (match replay tampered r with
  | Error (`Hash_mismatch 2) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Catchup.pp_error e
  | Ok _ -> Alcotest.fail "tampered history accepted");
  (* Strip votes below quorum. *)
  let starved =
    List.map
      (fun (item : Catchup.item) ->
        let c = item.certificate in
        {
          item with
          certificate =
            Certificate.make ~round:c.round ~step:c.step ~block_hash:c.block_hash
              ~votes:[ List.hd c.votes ];
        })
      items
  in
  match replay starved r with
  | Error (`Round (1, `Insufficient_votes _)) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Catchup.pp_error e
  | Ok _ -> Alcotest.fail "starved certificates accepted"

let reordered_history_rejected () =
  let r, _node, items = run_and_collect () in
  match replay (List.rev items) r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reordered history accepted"

let lookback_weights () =
  (* Section 5.3: sortition weights come from the last block created
     lookback_b before the seed block, so freshly moved stake cannot
     immediately influence committee selection. We build a chain where
     stake moves, then compare validation contexts at different
     look-backs. *)
  let sig_scheme = Signature_scheme.sim and vrf_scheme = Vrf.sim in
  let alice = Algorand_core.Identity.generate ~sig_scheme ~vrf_scheme ~seed:"lb-a" in
  let bob = Algorand_core.Identity.generate ~sig_scheme ~vrf_scheme ~seed:"lb-b" in
  let genesis = Algorand_ledger.Genesis.make [ (alice.pk, 900); (bob.pk, 100) ] in
  let chain = Chain.create genesis in
  (* Round 1 block (timestamp 100) moves 800 from alice to bob. *)
  let tx =
    Transaction.make ~signer:alice.signer ~sender:alice.pk ~recipient:bob.pk ~amount:800
      ~nonce:0
  in
  let block : Algorand_ledger.Block.t =
    {
      header =
        {
          round = 1;
          prev_hash = (Chain.tip chain).hash;
          timestamp = 100.0;
          seed = Sha256.digest "seed1";
          seed_proof = "";
          proposer_pk = alice.pk;
          proposer_vrf_hash = Sha256.digest "v";
          proposer_vrf_proof = "";
        };
      txs = [ tx ];
      padding = 0;
    }
  in
  let entry = Result.get_ok (Chain.add chain block) in
  Chain.set_tip chain entry.hash;
  let params lookback =
    { Algorand_ba.Params.paper with seed_refresh_interval = 1; lookback_b = lookback }
  in
  (* Zero look-back: weights from the seed block itself (post-move). *)
  let ctx_now =
    Catchup.validation_ctx ~params:(params 0.0) ~sig_scheme ~vrf_scheme ~chain ~round:2
  in
  Alcotest.(check int) "post-move bob" 900 (ctx_now.weight_of bob.pk);
  (* Large look-back: weights from genesis (pre-move). *)
  let ctx_old =
    Catchup.validation_ctx ~params:(params 1_000.0) ~sig_scheme ~vrf_scheme ~chain
      ~round:2
  in
  Alcotest.(check int) "pre-move bob" 100 (ctx_old.weight_of bob.pk);
  Alcotest.(check int) "pre-move alice" 900 (ctx_old.weight_of alice.pk);
  (* Totals agree either way (stake is conserved). *)
  Alcotest.(check int) "totals equal" ctx_now.total_weight ctx_old.total_weight

let sharded_storage () =
  (* Section 8.3 storage sharding: with 4 shards each node serves only
     a quarter of the rounds, so no single node can bootstrap a client,
     but the union of nodes can. *)
  let r = Harness.run { config with storage_shards = 4 } in
  Alcotest.(check (list int)) "safe" [] r.safety.double_final;
  let nodes = Array.to_list r.harness.nodes in
  (* Some node misses some round under sharding. *)
  let someone_incomplete =
    List.exists
      (fun n -> List.length (Catchup.collect ~respect_shards:true n ~up_to_round:3) < 3)
      nodes
  in
  Alcotest.(check bool) "single nodes are incomplete" true someone_incomplete;
  (* But collectively the history is complete and replays. *)
  match Catchup.collect_from nodes ~up_to_round:3 with
  | None -> Alcotest.fail "union of shards incomplete"
  | Some items ->
    Alcotest.(check int) "three rounds" 3 (List.length items);
    (match replay items r with
    | Ok chain ->
      Alcotest.(check int) "caught up" 3 (Algorand_ledger.Chain.tip chain).height
    | Error e -> Alcotest.failf "replay failed: %a" Catchup.pp_error e)

let suite =
  [
    ( "catchup",
      [
        Alcotest.test_case "lookback weights (5.3)" `Quick lookback_weights;
        ts "sharded storage catch-up" sharded_storage;
        ts "successful catchup" successful_catchup;
        ts "final certificate proves safety" final_certificate_proves_safety;
        ts "tampered history rejected" tampered_history_rejected;
        ts "reordered history rejected" reordered_history_rejected;
      ] );
  ]
