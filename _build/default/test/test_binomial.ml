(* Numerics underpinning sortition: binomial pmf/cdf, the interval
   search of Algorithm 1, Poisson tails, and log-gamma accuracy. *)

open Algorand_sortition

let t name f = Alcotest.test_case name `Quick f
let close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let log_gamma_small () =
  (* ln Gamma(n) = ln (n-1)! for small integers. *)
  let fact = [| 1.; 1.; 2.; 6.; 24.; 120.; 720.; 5040. |] in
  for n = 1 to 7 do
    close ~eps:1e-10 (Printf.sprintf "lgamma(%d)" n) (log fact.(n - 1))
      (Special.log_gamma (float_of_int n))
  done

let log_gamma_recurrence () =
  (* Gamma(x+1) = x Gamma(x) across magnitudes. *)
  List.iter
    (fun x ->
      close ~eps:1e-9
        (Printf.sprintf "recurrence at %g" x)
        (Special.log_gamma x +. log x)
        (Special.log_gamma (x +. 1.0)))
    [ 0.5; 1.5; 3.7; 12.0; 100.5; 5000.0 ]

let pmf_sums_to_one () =
  List.iter
    (fun (n, p) ->
      let s = ref 0.0 in
      for k = 0 to n do
        s := !s +. Binomial.pmf ~k ~n ~p
      done;
      close ~eps:1e-9 (Printf.sprintf "sum n=%d p=%g" n p) 1.0 !s)
    [ (1, 0.5); (10, 0.1); (100, 0.01); (1000, 0.002) ]

let pmf_matches_direct () =
  (* Small cases against exact arithmetic. *)
  close "B(1;2,0.5)" 0.5 (Binomial.pmf ~k:1 ~n:2 ~p:0.5);
  close "B(0;3,0.5)" 0.125 (Binomial.pmf ~k:0 ~n:3 ~p:0.5);
  close "B(2;4,0.25)" (6.0 *. (0.25 ** 2.) *. (0.75 ** 2.)) (Binomial.pmf ~k:2 ~n:4 ~p:0.25)

let cdf_monotone () =
  let n = 50 and p = 0.1 in
  let prev = ref (-1.0) in
  for k = 0 to n do
    let c = Binomial.cdf ~k ~n ~p in
    if c < !prev -. 1e-12 then Alcotest.fail "cdf not monotone";
    prev := c
  done;
  close "cdf(n) = 1" 1.0 (Binomial.cdf ~k:n ~n ~p)

let select_j_boundaries () =
  (* frac below B(0) selects 0 sub-users; frac just under 1 selects ~n. *)
  Alcotest.(check int) "tiny frac" 0 (Binomial.select_j ~frac:1e-12 ~w:100 ~p:0.01);
  Alcotest.(check int) "zero weight" 0 (Binomial.select_j ~frac:0.5 ~w:0 ~p:0.5);
  Alcotest.(check int) "p = 1 selects all" 7 (Binomial.select_j ~frac:0.3 ~w:7 ~p:1.0);
  Alcotest.(check int) "p = 0 selects none" 0 (Binomial.select_j ~frac:0.3 ~w:7 ~p:0.0);
  let j = Binomial.select_j ~frac:0.999999 ~w:10 ~p:0.5 in
  Alcotest.(check bool) "high frac selects many" true (j >= 9)

let select_j_is_cdf_inverse () =
  (* j = select_j(frac) iff cdf(j-1) <= frac < cdf(j). *)
  let w = 40 and p = 0.13 in
  List.iter
    (fun frac ->
      let j = Binomial.select_j ~frac ~w ~p in
      let below = if j = 0 then 0.0 else Binomial.cdf ~k:(j - 1) ~n:w ~p in
      let upto = Binomial.cdf ~k:j ~n:w ~p in
      if not (below <= frac && (frac < upto || j = w)) then
        Alcotest.failf "frac %g -> j=%d but interval [%g, %g)" frac j below upto)
    [ 0.0; 0.001; 0.01; 0.2; 0.5; 0.9; 0.99; 0.9999 ]

let select_j_heavy_regime () =
  (* w*p so large that B(0) underflows: the mode-walk path. The median
     of the selection must sit near the mean. *)
  let w = 1_000_000 and p = 0.002 in
  (* mean 2000, sigma ~44.7 *)
  let j = Binomial.select_j ~frac:0.5 ~w ~p in
  Alcotest.(check bool)
    (Printf.sprintf "median near mean (got %d)" j)
    true
    (j > 1900 && j < 2100);
  let j_low = Binomial.select_j ~frac:0.0001 ~w ~p in
  let j_high = Binomial.select_j ~frac:0.9999 ~w ~p in
  Alcotest.(check bool) "tails ordered" true (j_low < j && j < j_high)

let expected_selection_fraction () =
  (* E[j] = w * p: Monte Carlo over uniformly spaced fracs. *)
  let w = 500 and p = 0.02 in
  let samples = 2000 in
  let total = ref 0 in
  for i = 0 to samples - 1 do
    let frac = (float_of_int i +. 0.5) /. float_of_int samples in
    total := !total + Binomial.select_j ~frac ~w ~p
  done;
  let mean = float_of_int !total /. float_of_int samples in
  close ~eps:0.5 "mean selection" (float_of_int w *. p) mean

let poisson_basics () =
  close "pmf(0)" (exp (-2.0)) (Poisson.pmf ~k:0 ~mean:2.0);
  close "pmf(1)" (2.0 *. exp (-2.0)) (Poisson.pmf ~k:1 ~mean:2.0);
  let s = ref 0.0 in
  for k = 0 to 100 do
    s := !s +. Poisson.pmf ~k ~mean:5.0
  done;
  close "sums to 1" 1.0 !s;
  (* sf + cdf = 1 *)
  close ~eps:1e-9 "sf complement" 1.0 (Poisson.cdf ~k:7 ~mean:5.0 +. Poisson.sf ~k:7 ~mean:5.0)

let poisson_far_tail () =
  (* Known far-tail value: P(X > k) for large mean stays positive and
     tiny; 1 - cdf would round to 0. *)
  let tail = Poisson.sf ~k:2600 ~mean:2000.0 in
  Alcotest.(check bool) "positive" true (tail > 0.0);
  Alcotest.(check bool) "tiny" true (tail < 1e-30)

let suite =
  [
    ( "binomial+poisson",
      [
        t "log_gamma small integers" log_gamma_small;
        t "log_gamma recurrence" log_gamma_recurrence;
        t "pmf sums to one" pmf_sums_to_one;
        t "pmf matches direct computation" pmf_matches_direct;
        t "cdf monotone" cdf_monotone;
        t "select_j boundaries" select_j_boundaries;
        t "select_j inverts the cdf" select_j_is_cdf_inverse;
        t "select_j heavy regime" select_j_heavy_regime;
        t "expected selection fraction" expected_selection_fraction;
        t "poisson basics" poisson_basics;
        t "poisson far tail" poisson_far_tail;
      ] );
  ]
