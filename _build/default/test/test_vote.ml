(* Vote messages and validation (Algorithms 4 and 6), the vote counter
   (Algorithm 5), and the common coin (Algorithm 9). *)

open Algorand_crypto
open Algorand_ba
module Identity = Algorand_core.Identity

let t name f = Alcotest.test_case name `Quick f

let sig_scheme = Signature_scheme.sim
let vrf_scheme = Vrf.sim

let users = Array.init 10 (fun i ->
    Identity.generate ~sig_scheme ~vrf_scheme ~seed:(Printf.sprintf "voter%d" i))

let weight = 100
let total_weight = weight * Array.length users
let prev_hash = String.make 32 'P'
let seed = "round-seed"

let vctx : Vote.validation_ctx =
  {
    sig_scheme;
    vrf_scheme;
    sig_pk_of = Identity.sig_pk;
    vrf_pk_of = Identity.vrf_pk;
    seed;
    total_weight;
    weight_of = (fun _ -> weight);
    last_block_hash = prev_hash;
    tau_of_step = (fun _ -> 50.0);
  }

let make_vote ?(round = 1) ?(step = Vote.Bin 1) ?(value = "V") (i : int) : Vote.t option =
  Vote.make ~signer:users.(i).signer ~prover:users.(i).prover ~pk:users.(i).pk ~seed
    ~tau:50.0 ~w:weight ~total_weight ~round ~step ~prev_hash ~value

(* With tau=50 over 10 users, each user is selected w.h.p.; find one. *)
let some_vote () : Vote.t =
  let rec go i =
    if i >= Array.length users then Alcotest.fail "no committee member selected"
    else match make_vote i with Some v -> v | None -> go (i + 1)
  in
  go 0

let roundtrip_validation () =
  let v = some_vote () in
  let votes = Vote.validate vctx v in
  Alcotest.(check bool) (Printf.sprintf "positive votes (%d)" votes) true (votes > 0)

let rejections () =
  let v = some_vote () in
  (* Wrong fork. *)
  Alcotest.(check int) "off-fork rejected" 0
    (Vote.validate { vctx with last_block_hash = String.make 32 'Q' } v);
  (* Tampered value breaks the signature. *)
  Alcotest.(check int) "tampered value" 0 (Vote.validate vctx { v with value = "W" });
  (* Tampered step breaks both signature and sortition role. *)
  Alcotest.(check int) "tampered step" 0
    (Vote.validate vctx { v with step = Vote.Bin 2 });
  (* Wrong seed on the validator side. *)
  Alcotest.(check int) "wrong seed" 0 (Vote.validate { vctx with seed = "x" } v);
  (* A voter with no stake. *)
  Alcotest.(check int) "zero weight" 0
    (Vote.validate { vctx with weight_of = (fun _ -> 0) } v)

let sortition_not_selected_returns_none () =
  (* With tau tiny, most users are not on the committee. *)
  let selected = ref 0 in
  for i = 0 to Array.length users - 1 do
    match
      Vote.make ~signer:users.(i).signer ~prover:users.(i).prover ~pk:users.(i).pk ~seed
        ~tau:0.5 ~w:weight ~total_weight ~round:9 ~step:(Vote.Bin 1) ~prev_hash ~value:"V"
    with
    | Some _ -> incr selected
    | None -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "few selected (%d)" !selected) true (!selected <= 4)

let steps_and_roles () =
  Alcotest.(check bool) "step ordering" true
    (Vote.compare_step Vote.Reduction_one Vote.Reduction_two < 0
    && Vote.compare_step Vote.Reduction_two (Vote.Bin 1) < 0
    && Vote.compare_step (Vote.Bin 1) (Vote.Bin 2) < 0
    && Vote.compare_step (Vote.Bin 99) Vote.Final < 0);
  (* Distinct roles per round and step (fresh committees). *)
  let r1 = Vote.committee_role ~round:1 ~step:(Vote.Bin 1) in
  let r2 = Vote.committee_role ~round:2 ~step:(Vote.Bin 1) in
  let r3 = Vote.committee_role ~round:1 ~step:(Vote.Bin 2) in
  Alcotest.(check int) "all distinct" 3 (List.length (List.sort_uniq compare [ r1; r2; r3 ]))

let gossip_id_excludes_value () =
  let v = some_vote () in
  Alcotest.(check string) "same id for both values" (Vote.gossip_id v)
    (Vote.gossip_id { v with value = "other" });
  Alcotest.(check bool) "different step, different id" false
    (String.equal (Vote.gossip_id v) (Vote.gossip_id { v with step = Vote.Bin 2 }))

let counter_threshold_and_dedup () =
  let c = Vote_counter.create ~threshold:10.0 in
  let r1 = Vote_counter.add c ~pk:"a" ~votes:6 ~value:"X" ~sorthash:"h1" in
  Alcotest.(check bool) "counted" true (r1 = `Counted);
  (* Same pk again: ignored even with different value. *)
  Alcotest.(check bool) "dedup by pk" true
    (Vote_counter.add c ~pk:"a" ~votes:6 ~value:"Y" ~sorthash:"h1" = `Ignored);
  Alcotest.(check bool) "zero votes ignored" true
    (Vote_counter.add c ~pk:"z" ~votes:0 ~value:"X" ~sorthash:"hz" = `Ignored);
  (* Threshold is strict: reaching exactly 10 does not trigger. *)
  Alcotest.(check bool) "10 votes not enough" true
    (Vote_counter.add c ~pk:"b" ~votes:4 ~value:"X" ~sorthash:"h2" = `Counted);
  (match Vote_counter.add c ~pk:"c" ~votes:1 ~value:"X" ~sorthash:"h3" with
  | `Reached "X" -> ()
  | _ -> Alcotest.fail "crossing threshold must report Reached");
  Alcotest.(check (option string)) "reached recorded" (Some "X") (Vote_counter.reached c);
  Alcotest.(check int) "votes_for" 11 (Vote_counter.votes_for c "X");
  Alcotest.(check int) "voters" 3 (Vote_counter.distinct_voters c)

let counter_reports_first_crossing_only () =
  let c = Vote_counter.create ~threshold:5.0 in
  ignore (Vote_counter.add c ~pk:"a" ~votes:6 ~value:"X" ~sorthash:"h");
  (* A later crossing by another value must not produce a second Reached. *)
  Alcotest.(check bool) "second value does not re-trigger" true
    (Vote_counter.add c ~pk:"b" ~votes:6 ~value:"Y" ~sorthash:"h2" = `Counted)

let coin_properties () =
  let flip = Common_coin.flip in
  Alcotest.(check int) "no votes -> 0" 0 (flip []);
  let msgs = [ (Sha256.digest "a", 3); (Sha256.digest "b", 1) ] in
  let c1 = flip msgs in
  Alcotest.(check int) "deterministic" c1 (flip msgs);
  Alcotest.(check bool) "binary" true (c1 = 0 || c1 = 1);
  (* Order independence: the minimum does not care about list order. *)
  Alcotest.(check int) "order independent" c1 (flip (List.rev msgs));
  (* Roughly balanced over many sorthashes. *)
  let ones = ref 0 in
  for i = 1 to 400 do
    if flip [ (Sha256.digest (string_of_int i), 2) ] = 1 then incr ones
  done;
  Alcotest.(check bool) (Printf.sprintf "balanced (%d/400)" !ones) true
    (!ones > 150 && !ones < 250)

let coin_uses_all_subusers () =
  (* A message with more sub-user votes contributes more candidate
     hashes, so the min over (h,5) differs from (h,1) sometimes. *)
  let differs = ref false in
  for i = 0 to 50 do
    let h = Sha256.digest (Printf.sprintf "m%d" i) in
    if Common_coin.flip [ (h, 1) ] <> Common_coin.flip [ (h, 5) ] then differs := true
  done;
  Alcotest.(check bool) "sub-user count matters" true !differs

let sub_user_weights_counted () =
  (* A user holding most of the stake is selected as many sub-users
     (section 5.1): its single vote message must carry j > 1 weighted
     votes, and the counter must credit all of them at once. *)
  let sig_scheme = Signature_scheme.sim and vrf_scheme = Vrf.sim in
  let whale = Identity.generate ~sig_scheme ~vrf_scheme ~seed:"whale" in
  let w = 900 and total = 1000 in
  let ctx =
    {
      vctx with
      weight_of = (fun pk -> if String.equal pk whale.pk then w else 10);
      tau_of_step = (fun _ -> 100.0);
    }
  in
  match
    Vote.make ~signer:whale.signer ~prover:whale.prover ~pk:whale.pk ~seed ~tau:100.0 ~w
      ~total_weight:total ~round:1 ~step:(Vote.Bin 1) ~prev_hash ~value:"V"
  with
  | None -> Alcotest.fail "whale not selected at tau=100 with 90% stake"
  | Some v ->
    let votes = Vote.validate ctx v in
    (* Expectation is 90 sub-users; demand a healthy multiple. *)
    Alcotest.(check bool) (Printf.sprintf "many sub-users (%d)" votes) true (votes > 30);
    let c = Vote_counter.create ~threshold:(float_of_int (votes - 1)) in
    (match Vote_counter.add c ~pk:v.voter_pk ~votes ~value:v.value ~sorthash:v.sorthash with
    | `Reached _ -> ()
    | _ -> Alcotest.fail "single weighted message should cross the threshold alone")

let suite =
  [
    ( "vote",
      [
        t "sub-user weights counted" sub_user_weights_counted;
        t "validation roundtrip" roundtrip_validation;
        t "rejections" rejections;
        t "sortition gates voting" sortition_not_selected_returns_none;
        t "steps and roles" steps_and_roles;
        t "gossip id excludes value" gossip_id_excludes_value;
        t "counter threshold + dedup" counter_threshold_and_dedup;
        t "counter first crossing only" counter_reports_first_crossing_only;
        t "common coin properties" coin_properties;
        t "common coin sub-users" coin_uses_all_subusers;
      ] );
  ]
