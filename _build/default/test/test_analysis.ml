(* The appendix analyses (technical report A, B.1, C.3 and the
   section 8.3 certificate-attack bound). *)

module Analysis = Algorand_ba.Analysis

let t name f = Alcotest.test_case name `Quick f

let proposer_bounds () =
  (* Appendix B.1: tau_proposer = 26 gives at least one proposer and at
     most 70 with very high probability (paper: 1 - 1e-11). *)
  let p_none = Analysis.no_proposer_probability ~tau:26.0 in
  Alcotest.(check bool) (Printf.sprintf "P(none) = %.2e" p_none) true (p_none < 1e-11);
  let p_many = Analysis.too_many_proposers_probability ~tau:26.0 ~bound:70 in
  Alcotest.(check bool) (Printf.sprintf "P(>70) = %.2e" p_many) true (p_many < 1e-11);
  let p = Analysis.proposer_failure_probability ~tau:26.0 ~bound:70 in
  Alcotest.(check bool) (Printf.sprintf "combined %.2e" p) true (p < 2.2e-11);
  (* Monotonicity sanity. *)
  Alcotest.(check bool) "smaller tau, more none-failures" true
    (Analysis.no_proposer_probability ~tau:5.0 > p_none)

let step_counts () =
  Alcotest.(check int) "common case 4 steps" 4 Analysis.common_case_steps;
  let e = Analysis.expected_worst_case_steps ~h:0.8 in
  (* Paper: expected 13 steps in the worst case (analysis in C.3). *)
  Alcotest.(check bool) (Printf.sprintf "worst case %.1f near 13" e) true
    (e >= 10.0 && e <= 14.0);
  (* Weaker honesty -> more steps. *)
  Alcotest.(check bool) "monotone in h" true
    (Analysis.expected_worst_case_steps ~h:0.7 > e)

let max_steps_bound () =
  let p = Analysis.max_steps_overflow_probability ~h:0.8 ~max_steps:150 in
  Alcotest.(check bool) (Printf.sprintf "overflow %.2e negligible" p) true (p < 1e-9);
  Alcotest.(check bool) "fewer steps, higher overflow" true
    (Analysis.max_steps_overflow_probability ~h:0.8 ~max_steps:30 > p)

let honest_seed_blocks () =
  (* Logarithmic in 1/F (Appendix A). *)
  let b9 = Analysis.blocks_for_honest_seed ~h:0.8 ~failure:1e-9 in
  let b18 = Analysis.blocks_for_honest_seed ~h:0.8 ~failure:1e-18 in
  Alcotest.(check bool) (Printf.sprintf "1e-9 needs %d blocks" b9) true (b9 <= 15);
  Alcotest.(check int) "doubling the exponent doubles the blocks" (2 * b9) b18;
  (* At h = 0.8, each block is dishonest w.p. 0.2; 13 blocks give
     0.2^13 < 1e-9. *)
  Alcotest.(check int) "exact count at h=0.8" 13 b9

let certificate_attack () =
  (* Section 8.3: for tau_step > 1000 the per-step forgery probability
     is below 2^-166. Our Chernoff bound must confirm (it is in fact
     far smaller at tau = 2000). *)
  let log2_p = Analysis.log2_certificate_attack_per_step ~h:0.8 ~tau:2000.0 ~t:0.685 in
  Alcotest.(check bool) (Printf.sprintf "per-step 2^%.0f < 2^-166" log2_p) true
    (log2_p < -166.0);
  let log2_all =
    Analysis.log2_certificate_attack ~h:0.8 ~tau:2000.0 ~t:0.685 ~max_steps:150
  in
  Alcotest.(check bool) "union over steps still negligible" true (log2_all < -150.0);
  (* The bound degrades as tau shrinks. *)
  let log2_small = Analysis.log2_certificate_attack_per_step ~h:0.8 ~tau:200.0 ~t:0.685 in
  Alcotest.(check bool) "monotone in tau" true (log2_small > log2_p)

let chernoff_sanity () =
  (* The bound must actually bound: compare against the summed tail
     where both are representable. *)
  List.iter
    (fun (mean, k) ->
      let exact = Algorand_sortition.Poisson.sf ~k:(int_of_float k - 1) ~mean in
      let bound = 2.0 ** Analysis.log2_poisson_tail_bound ~mean ~k in
      if exact > bound +. 1e-300 then
        Alcotest.failf "bound violated at mean=%g k=%g: exact %.3e > bound %.3e" mean k
          exact bound)
    [ (10.0, 20.0); (10.0, 30.0); (100.0, 150.0); (400.0, 600.0) ]

let suite =
  [
    ( "analysis",
      [
        t "proposer bounds (B.1)" proposer_bounds;
        t "step counts (C.3)" step_counts;
        t "MaxSteps overflow" max_steps_bound;
        t "honest seed blocks (A)" honest_seed_blocks;
        t "certificate attack (8.3)" certificate_attack;
        t "chernoff bound is a bound" chernoff_sanity;
      ] );
  ]
