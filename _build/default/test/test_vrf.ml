(* VRF properties shared by both implementations (determinism,
   verifiability, input sensitivity) plus ECVRF-specific soundness:
   proofs must not transplant across inputs or keys, and tampered
   proofs must fail. *)

open Algorand_crypto

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let roundtrip (scheme : Vrf.scheme) () =
  let prover, pk = scheme.generate ~seed:"alice" in
  let hash, proof = prover.prove "input-1" in
  Alcotest.(check int) "output length" scheme.output_length (String.length hash);
  Alcotest.(check int) "proof length" scheme.proof_length (String.length proof);
  (match scheme.verify ~pk ~input:"input-1" ~proof with
  | Some h -> Alcotest.(check string) "verified hash matches" hash h
  | None -> Alcotest.fail "valid proof rejected");
  (* Determinism. *)
  let hash', proof' = prover.prove "input-1" in
  Alcotest.(check string) "hash deterministic" hash hash';
  Alcotest.(check string) "proof deterministic" proof proof';
  (* Input sensitivity. *)
  let hash2, _ = prover.prove "input-2" in
  Alcotest.(check bool) "different input, different hash" false (String.equal hash hash2)

let wrong_input (scheme : Vrf.scheme) () =
  let prover, pk = scheme.generate ~seed:"alice" in
  let our_hash, proof = prover.prove "input-1" in
  match scheme.verify ~pk ~input:"input-2" ~proof with
  | None -> ()
  | Some h ->
    (* The sim scheme "verifies" anything but must return a *different*
       hash for a different input, so transplanted proofs still lose. *)
    Alcotest.(check bool) "hash differs for other input" false (String.equal h our_hash)

let ecvrf_soundness () =
  let scheme = Vrf.ecvrf in
  let prover, pk = scheme.generate ~seed:"alice" in
  let _, pk2 = scheme.generate ~seed:"bob" in
  let _, proof = prover.prove "in" in
  Alcotest.(check bool) "wrong key rejected" true (scheme.verify ~pk:pk2 ~input:"in" ~proof = None);
  Alcotest.(check bool) "wrong input rejected" true
    (scheme.verify ~pk ~input:"other" ~proof = None);
  (* Tamper with each component of the proof. *)
  List.iter
    (fun pos ->
      let b = Bytes.of_string proof in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x04));
      Alcotest.(check bool)
        (Printf.sprintf "tampered byte %d rejected" pos)
        true
        (scheme.verify ~pk ~input:"in" ~proof:(Bytes.to_string b) = None))
    [ 0; 31; 32; 47; 48; 79 ];
  Alcotest.(check bool) "truncated proof rejected" true
    (scheme.verify ~pk ~input:"in" ~proof:(String.sub proof 0 40) = None)

let hash_to_curve_valid () =
  (* h2c output must be a curve point of prime order (cofactor cleared). *)
  List.iter
    (fun input ->
      let p = Vrf.hash_to_curve input in
      Alcotest.(check bool) "on curve" true (Ed25519.on_curve p);
      Alcotest.(check bool) "prime order" true
        (Ed25519.equal_points (Ed25519.scalar_mult Ed25519.order p) Ed25519.identity))
    [ "a"; "b"; "longer input string"; "" ]

let outputs_uniform_bits () =
  (* Cheap sanity: over 200 evaluations, top-bit frequency near 1/2. *)
  let scheme = Vrf.sim in
  let prover, _ = scheme.generate ~seed:"uniform" in
  let ones = ref 0 in
  for i = 1 to 200 do
    let h, _ = prover.prove (string_of_int i) in
    if Char.code h.[0] land 0x80 <> 0 then incr ones
  done;
  Alcotest.(check bool) "top bit balanced" true (!ones > 60 && !ones < 140)

let sim_matches_interface () =
  Alcotest.(check int) "proof_length" 0 Vrf.sim.proof_length;
  let _, pk = Vrf.sim.generate ~seed:"x" in
  Alcotest.(check bool) "nonempty pk" true (String.length pk = 32)

let suite =
  [
    ( "vrf",
      [
        ts "ecvrf roundtrip" (roundtrip Vrf.ecvrf);
        t "sim roundtrip" (roundtrip Vrf.sim);
        ts "ecvrf wrong input" (wrong_input Vrf.ecvrf);
        t "sim wrong input" (wrong_input Vrf.sim);
        ts "ecvrf soundness" ecvrf_soundness;
        ts "hash_to_curve validity" hash_to_curve_valid;
        t "output bits balanced" outputs_uniform_bits;
        t "sim interface" sim_matches_interface;
        t "signature schemes" (fun () ->
            List.iter
              (fun (scheme : Signature_scheme.scheme) ->
                let signer, pk = scheme.generate ~seed:"s" in
                let s = signer.sign "m" in
                Alcotest.(check int) "length" scheme.signature_length (String.length s);
                Alcotest.(check bool) "verify" true
                  (scheme.verify ~pk ~msg:"m" ~signature:s);
                Alcotest.(check bool) "wrong msg" false
                  (scheme.verify ~pk ~msg:"m2" ~signature:s))
              [ Signature_scheme.sim ]);
      ] );
  ]
