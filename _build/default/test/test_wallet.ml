(* The wallet: payments, nonce sequencing, confirmation status. *)

module Harness = Algorand_core.Harness
module Wallet = Algorand_core.Wallet
module Node = Algorand_core.Node

let ts name f = Alcotest.test_case name `Slow f

let wallet_flow () =
  let config =
    {
      Harness.default with
      users = 16;
      rounds = 3;
      block_bytes = 30_000;
      tx_rate_per_s = 0.0;
      rng_seed = 41;
    }
  in
  let h = Harness.build config in
  let alice = Wallet.create ~identity:h.identities.(0) ~node:h.nodes.(0) in
  let bob = Wallet.create ~identity:h.identities.(1) ~node:h.nodes.(1) in
  Alcotest.(check int) "initial balance" config.stake_per_user (Wallet.balance alice);
  (* Submit two sequential payments shortly after start. *)
  let txs = ref [] in
  Algorand_sim.Engine.schedule h.engine ~delay:0.5 (fun () ->
      (* Explicit sequencing: list literals evaluate right-to-left. *)
      let t1 = Wallet.pay alice ~to_:(Wallet.address bob) ~amount:100 in
      let t2 = Wallet.pay alice ~to_:(Wallet.address bob) ~amount:50 in
      txs := [ t1; t2 ]);
  Array.iter Node.start h.nodes;
  ignore (Algorand_sim.Engine.run h.engine ~until:config.max_sim_time ());
  let safety = Harness.audit_safety h in
  Alcotest.(check (list int)) "safe" [] safety.double_final;
  (* Both payments confirmed and balances settled on both wallets' nodes. *)
  Alcotest.(check int) "alice balance" (config.stake_per_user - 150) (Wallet.balance alice);
  Alcotest.(check int) "bob balance" (config.stake_per_user + 150) (Wallet.balance bob);
  List.iter
    (fun tx ->
      match Wallet.status alice tx with
      | Wallet.Confirmed _ -> ()
      | s -> Alcotest.failf "expected confirmed, got %a" Wallet.pp_status s)
    !txs;
  (* An unsubmitted transaction is pending. *)
  let stranger =
    Algorand_ledger.Transaction.make ~signer:h.identities.(2).signer
      ~sender:h.identities.(2).pk ~recipient:(Wallet.address bob) ~amount:1 ~nonce:999
  in
  Alcotest.(check bool) "unknown tx pending" true (Wallet.status alice stranger = Wallet.Pending)

let nonce_sequencing () =
  let config = { Harness.default with users = 8; rounds = 1; tx_rate_per_s = 0.0 } in
  let h = Harness.build config in
  let w = Wallet.create ~identity:h.identities.(0) ~node:h.nodes.(0) in
  let t1 = Wallet.pay w ~to_:h.identities.(1).pk ~amount:1 in
  let t2 = Wallet.pay w ~to_:h.identities.(1).pk ~amount:1 in
  Alcotest.(check int) "nonces sequential" (t1.nonce + 1) t2.nonce

let suite =
  [
    ( "wallet",
      [ ts "payment flow + confirmation" wallet_flow; ts "nonce sequencing" nonce_sequencing ] );
  ]
