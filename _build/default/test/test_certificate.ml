(* Block certificates (section 8.3): quorum checking, forgery
   rejection, and the MaxSteps bound against late-step certificates. *)

open Algorand_crypto
open Algorand_ba
module Identity = Algorand_core.Identity
module Certificate = Algorand_core.Certificate

let t name f = Alcotest.test_case name `Quick f

(* Committee sizes chosen so a full vote set clears its threshold with
   a wide statistical margin (E = tau, threshold = T * tau, sigma well
   below the gap), keeping the deterministic seeds far from the edge. *)
let params = { Params.paper with tau_step = 60.0; tau_final = 200.0; max_steps = 24 }
let sig_scheme = Signature_scheme.sim
let vrf_scheme = Vrf.sim
let n = 10
let users =
  Array.init n (fun i ->
      Identity.generate ~sig_scheme ~vrf_scheme ~seed:(Printf.sprintf "cert%d" i))

let weight = 100
let total_weight = weight * n
let prev_hash = String.make 32 'C'
let seed = "cert-seed"
let round = 5
let step = Vote.Bin 2
let value = Sha256.digest "certified-block"

let vctx : Vote.validation_ctx =
  {
    sig_scheme;
    vrf_scheme;
    sig_pk_of = Identity.sig_pk;
    vrf_pk_of = Identity.vrf_pk;
    seed;
    total_weight;
    weight_of = (fun _ -> weight);
    last_block_hash = prev_hash;
    tau_of_step = (function Vote.Final -> params.tau_final | _ -> params.tau_step);
  }

let all_votes ?(value = value) ?(step = step) () : Vote.t list =
  Array.to_list users
  |> List.filter_map (fun (u : Identity.t) ->
         Vote.make ~signer:u.signer ~prover:u.prover ~pk:u.pk ~seed ~tau:params.tau_step
           ~w:weight ~total_weight ~round ~step ~prev_hash ~value)

let valid_certificate () =
  let votes = all_votes () in
  Alcotest.(check bool) "enough voters" true (List.length votes >= 7);
  let c = Certificate.make ~round ~step ~block_hash:value ~votes in
  (match Certificate.validate ~params ~ctx:vctx c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid certificate rejected: %a" Certificate.pp_error e);
  Alcotest.(check bool) "has a size" true (Certificate.size_bytes c > 0)

let insufficient_votes () =
  let votes = all_votes () in
  let few = [ List.hd votes ] in
  let c = Certificate.make ~round ~step ~block_hash:value ~votes:few in
  match Certificate.validate ~params ~ctx:vctx c with
  | Error (`Insufficient_votes _) -> ()
  | Ok () -> Alcotest.fail "single vote accepted as quorum"
  | Error e -> Alcotest.failf "unexpected: %a" Certificate.pp_error e

let wrong_value_vote () =
  let votes = all_votes () in
  let bad = all_votes ~value:(Sha256.digest "other") () in
  let c =
    Certificate.make ~round ~step ~block_hash:value ~votes:(List.hd bad :: List.tl votes)
  in
  match Certificate.validate ~params ~ctx:vctx c with
  | Error `Wrong_value -> ()
  | _ -> Alcotest.fail "vote for another value accepted"

let mixed_steps () =
  let votes = all_votes () in
  let other_step = all_votes ~step:(Vote.Bin 3) () in
  let c =
    Certificate.make ~round ~step ~block_hash:value
      ~votes:(List.hd other_step :: List.tl votes)
  in
  match Certificate.validate ~params ~ctx:vctx c with
  | Error `Mixed_steps -> ()
  | _ -> Alcotest.fail "mixed-step votes accepted"

let duplicate_voter () =
  let votes = all_votes () in
  let c =
    Certificate.make ~round ~step ~block_hash:value ~votes:(List.hd votes :: votes)
  in
  match Certificate.validate ~params ~ctx:vctx c with
  | Error `Duplicate_voter -> ()
  | _ -> Alcotest.fail "duplicate voter accepted"

let forged_signature () =
  let votes = all_votes () in
  let forged = { (List.hd votes) with signature = String.make 32 'x' } in
  let c =
    Certificate.make ~round ~step ~block_hash:value ~votes:(forged :: List.tl votes)
  in
  match Certificate.validate ~params ~ctx:vctx c with
  | Error `Invalid_vote -> ()
  | _ -> Alcotest.fail "forged signature accepted"

let late_step_rejected () =
  (* Section 8.3's certificate attack: a step number beyond MaxSteps
     must be rejected outright. *)
  let step = Vote.Bin (params.max_steps + 10) in
  let votes = all_votes ~step () in
  let c = Certificate.make ~round ~step ~block_hash:value ~votes in
  match Certificate.validate ~params ~ctx:vctx c with
  | Error `Too_many_steps -> ()
  | _ -> Alcotest.fail "late-step certificate accepted"

let reduction_step_rejected () =
  let step = Vote.Reduction_one in
  let votes = all_votes ~step () in
  let c = Certificate.make ~round ~step ~block_hash:value ~votes in
  match Certificate.validate ~params ~ctx:vctx c with
  | Error `Too_many_steps -> ()
  | _ -> Alcotest.fail "reduction-step certificate accepted"

let final_certificate_uses_final_threshold () =
  (* Final-step certificates need the final-step threshold: a full vote
     set (~tau_final votes in expectation) passes, a third of it fails. *)
  let votes = all_votes ~step:Vote.Final () in
  let c = Certificate.make ~round ~step:Vote.Final ~block_hash:value ~votes in
  (match Certificate.validate ~params ~ctx:vctx c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "full final certificate rejected: %a" Certificate.pp_error e);
  let half = List.filteri (fun i _ -> i < List.length votes / 3) votes in
  let c' = Certificate.make ~round ~step:Vote.Final ~block_hash:value ~votes:half in
  match Certificate.validate ~params ~ctx:vctx c' with
  | Error (`Insufficient_votes _) -> ()
  | _ -> Alcotest.fail "third of final votes accepted"

let suite =
  [
    ( "certificate",
      [
        t "valid certificate accepted" valid_certificate;
        t "insufficient votes" insufficient_votes;
        t "wrong value" wrong_value_vote;
        t "mixed steps" mixed_steps;
        t "duplicate voter" duplicate_voter;
        t "forged signature" forged_signature;
        t "late step rejected" late_step_rejected;
        t "reduction step rejected" reduction_step_rejected;
        t "final threshold enforced" final_certificate_uses_final_threshold;
      ] );
  ]
