(* Randomized asynchronous torture test for BA*'s core safety theorem:

     if any user reaches FINAL consensus on a value in a round, no
     other user reaches consensus (final or tentative) on a different
     value in that round - regardless of message scheduling.

   The fuzzer runs clusters of BA* machines under a fully adversarial
   scheduler: at each step it either delivers some pending vote (in
   arbitrary order, to one recipient at a time, possibly dropping it)
   or fires some machine's pending timer. Across hundreds of seeds,
   with and without double-voting byzantine machines, the invariant
   must hold. Tentative-tentative disagreement is allowed (that is the
   fork case the recovery protocol exists for); final-anything
   disagreement is a safety bug. *)

open Algorand_crypto
open Algorand_ba
module Identity = Algorand_core.Identity
module Rng = Algorand_sim.Rng

let base_params =
  { Params.paper with tau_step = 40.0; tau_final = 60.0; max_steps = 15 }

type pending =
  | Deliver of int * Vote.t  (** destination machine, vote *)
  | Timer of int * int  (** machine, token *)

type cluster = {
  machines : Ba_star.t array;
  decided : (string * bool) option array;
  mutable queue : pending list;
  rng : Rng.t;
}

let build ~(params : Params.t) ~(n : int) ~(byzantine : int) ~(seed : int) : cluster =
  let sig_scheme = Signature_scheme.sim and vrf_scheme = Vrf.sim in
  let users =
    Array.init n (fun i ->
        Identity.generate ~sig_scheme ~vrf_scheme
          ~seed:(Printf.sprintf "torture-%d-%d" seed i))
  in
  let weight = 100 in
  let total_weight = weight * n in
  let prev_hash = String.make 32 'T' in
  let vseed = Printf.sprintf "torture-seed-%d" seed in
  let vctx : Vote.validation_ctx =
    {
      sig_scheme;
      vrf_scheme;
      sig_pk_of = Identity.sig_pk;
      vrf_pk_of = Identity.vrf_pk;
      seed = vseed;
      total_weight;
      weight_of = (fun _ -> weight);
      last_block_hash = prev_hash;
      tau_of_step = (function Vote.Final -> params.tau_final | _ -> params.tau_step);
    }
  in
  let empty_hash = Sha256.digest "torture-empty" in
  let block_a = Sha256.digest "torture-block-a" in
  let mk_vote i ~step ~value =
    Vote.make ~signer:users.(i).signer ~prover:users.(i).prover ~pk:users.(i).pk
      ~seed:vseed
      ~tau:(match step with Vote.Final -> params.tau_final | _ -> params.tau_step)
      ~w:weight ~total_weight ~round:1 ~step ~prev_hash ~value
  in
  let machine i =
    let ctx : Ba_star.ctx =
      {
        params;
        round = 1;
        empty_hash;
        my_votes =
          (fun ~step ~value ->
            let primary = mk_vote i ~step ~value in
            let extra =
              (* Byzantine machines double-vote: they also sign the
                 opposite candidate. *)
              if i < byzantine then
                let alt = if String.equal value block_a then empty_hash else block_a in
                mk_vote i ~step ~value:alt
              else None
            in
            List.filter_map (fun x -> x) [ primary; extra ]);
        validate = (fun v -> Vote.validate vctx v);
      }
    in
    Ba_star.create ctx
  in
  {
    machines = Array.init n machine;
    decided = Array.make n None;
    queue = [];
    rng = Rng.create (seed * 7919);
  }

let enqueue (c : cluster) (origin : int) (actions : Ba_star.action list) : unit =
  List.iter
    (fun action ->
      match action with
      | Ba_star.Broadcast v ->
        (* One pending delivery per recipient, scheduled independently
           (the adversary may reorder or drop each). Count our own vote
           immediately, as nodes do. *)
        Array.iteri
          (fun dst _ ->
            if dst <> origin then c.queue <- Deliver (dst, v) :: c.queue)
          c.machines;
        c.queue <- Deliver (origin, v) :: c.queue
      | Ba_star.Set_timer { token; delay = _ } -> c.queue <- Timer (origin, token) :: c.queue
      | Ba_star.Bin_decided _ -> ()
      | Ba_star.Decided { value; final; _ } -> c.decided.(origin) <- Some (value, final)
      | Ba_star.Hang -> ())
    actions

let run_one ?(params = base_params) ~(n : int) ~(byzantine : int) ~(seed : int)
    ~(drop_prob : float) () : unit =
  let c = build ~params ~n ~byzantine ~seed in
  let block_a = Sha256.digest "torture-block-a" in
  let empty_hash = Sha256.digest "torture-empty" in
  (* Adversarial start: part of the cluster saw block A, the rest only
     the empty block. *)
  Array.iteri
    (fun i m ->
      let input = if Rng.bool c.rng then block_a else empty_hash in
      enqueue c i (Ba_star.handle m (Ba_star.Start input)))
    c.machines;
  (* Adversarial scheduler. *)
  let budget = ref 30_000 in
  while c.queue <> [] && !budget > 0 do
    decr budget;
    let items = Array.of_list c.queue in
    let pick = Rng.int c.rng (Array.length items) in
    let chosen = items.(pick) in
    c.queue <- List.filteri (fun i _ -> i <> pick) c.queue;
    match chosen with
    | Deliver (dst, v) ->
      if Rng.float c.rng 1.0 >= drop_prob then
        enqueue c dst (Ba_star.handle c.machines.(dst) (Ba_star.Deliver v))
    | Timer (m, token) -> enqueue c m (Ba_star.handle c.machines.(m) (Ba_star.Timer token))
  done;
  (* The safety invariant. *)
  let finals =
    Array.to_list c.decided
    |> List.filter_map (function Some (v, true) -> Some v | _ -> None)
  in
  match finals with
  | [] -> ()
  | fv :: _ ->
    Array.iteri
      (fun i d ->
        match d with
        | Some (v, _) when not (String.equal v fv) ->
          Alcotest.failf
            "seed %d: machine %d decided %s but another machine decided FINAL %s" seed i
            (Hex.of_string (String.sub v 0 4))
            (Hex.of_string (String.sub fv 0 4))
        | _ -> ())
      c.decided

let fuzz ?(params = base_params) ~(name : string) ~(n : int) ~(byzantine : int)
    ~(drop_prob : float) ~(seeds : int) () =
  for seed = 1 to seeds do
    run_one ~params ~n ~byzantine ~seed ~drop_prob ()
  done;
  ignore name

let suite =
  [
    ( "torture",
      [
        Alcotest.test_case "honest, lossless async" `Slow
          (fuzz ~name:"honest" ~n:8 ~byzantine:0 ~drop_prob:0.0 ~seeds:60);
        Alcotest.test_case "honest, 20% loss" `Slow
          (fuzz ~name:"lossy" ~n:8 ~byzantine:0 ~drop_prob:0.2 ~seeds:60);
        Alcotest.test_case "2/8 byzantine double-voters" `Slow
          (fuzz ~name:"byzantine" ~n:8 ~byzantine:2 ~drop_prob:0.1 ~seeds:60);
        Alcotest.test_case "heavy loss (50%)" `Slow
          (fuzz ~name:"heavy" ~n:6 ~byzantine:1 ~drop_prob:0.5 ~seeds:40);
        Alcotest.test_case "look-back variant under loss + byzantine" `Slow
          (fuzz
             ~params:{ base_params with ba_variant = Params.Look_back }
             ~name:"lookback" ~n:8 ~byzantine:2 ~drop_prob:0.2 ~seeds:60);
      ] );
  ]
