test/test_chain.ml: Alcotest Algorand_crypto Algorand_ledger Balances Block Chain Genesis Hex List Result Sha256 Signature_scheme String Transaction
