test/test_wallet.ml: Alcotest Algorand_core Algorand_ledger Algorand_sim Array List
