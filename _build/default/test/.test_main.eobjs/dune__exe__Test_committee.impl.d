test/test_committee.ml: Alcotest Algorand_sortition Committee Printf
