test/test_sortition.ml: Alcotest Algorand_crypto Algorand_sortition Drbg Float List Option Printf Sha256 Sortition String Vrf
