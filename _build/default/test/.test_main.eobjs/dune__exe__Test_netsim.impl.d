test/test_netsim.ml: Adversary Alcotest Algorand_netsim Algorand_sim Array Engine Gossip List Network Printf Rng String Topology
