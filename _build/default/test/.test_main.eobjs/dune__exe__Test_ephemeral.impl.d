test/test_ephemeral.ml: Alcotest Algorand_crypto Ephemeral Hex List Option Printf Sha256 Signature_scheme String
