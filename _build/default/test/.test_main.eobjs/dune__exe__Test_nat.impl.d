test/test_nat.ml: Alcotest Algorand_crypto List Nat QCheck2 QCheck_alcotest String
