test/test_catchup.ml: Alcotest Algorand_ba Algorand_core Algorand_crypto Algorand_ledger Array Hex List Result Sha256 Signature_scheme Vrf
