test/test_analysis.ml: Alcotest Algorand_ba Algorand_sortition List Printf
