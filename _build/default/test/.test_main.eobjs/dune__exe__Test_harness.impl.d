test/test_harness.ml: Alcotest Algorand_ba Algorand_core Algorand_ledger Algorand_sim Array Float List Printf String
