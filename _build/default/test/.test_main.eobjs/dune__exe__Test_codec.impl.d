test/test_codec.ml: Alcotest Algorand_ba Algorand_core Algorand_crypto Algorand_ledger Hex List QCheck2 QCheck_alcotest Sha256 Signature_scheme String
