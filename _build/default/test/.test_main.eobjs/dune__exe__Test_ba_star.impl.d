test/test_ba_star.ml: Alcotest Algorand_ba Algorand_core Algorand_crypto Array Ba_star Hex List Option Params Printf Sha256 Signature_scheme String Vote Vrf
