test/test_fe25519.ml: Alcotest Algorand_crypto Ed25519 Fe25519 List Nat QCheck2 QCheck_alcotest Sha256
