test/test_ledger.ml: Alcotest Algorand_crypto Algorand_ledger Balances Block Genesis List QCheck2 QCheck_alcotest Signature_scheme Storage String Transaction Txpool Wire
