test/test_certificate.ml: Alcotest Algorand_ba Algorand_core Algorand_crypto Array List Params Printf Sha256 Signature_scheme String Vote Vrf
