test/test_sim.ml: Alcotest Algorand_sim Array Engine Event_queue Float List Metrics Option Printf Rng Stats
