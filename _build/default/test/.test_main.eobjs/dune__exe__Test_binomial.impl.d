test/test_binomial.ml: Alcotest Algorand_sortition Array Binomial Float List Poisson Printf Special
