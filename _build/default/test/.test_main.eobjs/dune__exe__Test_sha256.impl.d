test/test_sha256.ml: Alcotest Algorand_crypto Drbg Hex Hmac List QCheck2 QCheck_alcotest Sha256 String
