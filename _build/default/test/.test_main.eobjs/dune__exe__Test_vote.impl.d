test/test_vote.ml: Alcotest Algorand_ba Algorand_core Algorand_crypto Array Common_coin List Printf Sha256 Signature_scheme String Vote Vote_counter Vrf
