test/test_baselines.ml: Alcotest Algorand_baselines Printf
