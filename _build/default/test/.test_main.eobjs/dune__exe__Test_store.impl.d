test/test_store.ml: Alcotest Algorand_core Algorand_crypto Algorand_ledger Array Base32 Filename Fun Hex List Printf QCheck2 QCheck_alcotest Sha256 Signature_scheme String Sys Unix Vrf
