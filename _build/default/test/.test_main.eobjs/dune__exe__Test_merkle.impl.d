test/test_merkle.ml: Alcotest Algorand_core Algorand_crypto Algorand_ledger Array Hex List Merkle Option Printf QCheck2 QCheck_alcotest Sha256 Signature_scheme String
