test/test_vrf.ml: Alcotest Algorand_crypto Bytes Char Ed25519 List Printf Signature_scheme String Vrf
