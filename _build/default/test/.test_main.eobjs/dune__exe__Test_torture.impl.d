test/test_torture.ml: Alcotest Algorand_ba Algorand_core Algorand_crypto Algorand_sim Array Ba_star Hex List Params Printf Sha256 Signature_scheme String Vote Vrf
