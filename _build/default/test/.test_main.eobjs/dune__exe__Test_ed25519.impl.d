test/test_ed25519.ml: Alcotest Algorand_crypto Bytes Char Drbg Ed25519 List Nat Printf String
