test/test_node.ml: Alcotest Algorand_ba Algorand_core Algorand_crypto Algorand_ledger Array Hex List Printf Sha256 Signature_scheme String Vrf
