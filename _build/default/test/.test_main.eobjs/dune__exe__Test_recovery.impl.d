test/test_recovery.ml: Alcotest Algorand_ba Algorand_core Algorand_ledger Array List Printf String
