(* BA* protocol tests: a deterministic in-memory harness drives a
   population of state machines with synchronous delivery and explicit
   timeout control, covering the happy path, the split-vote fallback to
   the empty block, early votes, stale timers, and the MaxSteps hang. *)

open Algorand_crypto
open Algorand_ba
module Identity = Algorand_core.Identity

let t name f = Alcotest.test_case name `Quick f

let params =
  { Params.paper with tau_step = 40.0; tau_final = 60.0; max_steps = 24 }

let lookback_params = { params with ba_variant = Params.Look_back }

(* ------------------------------------------------------------------ *)
(* A tiny synchronous cluster of BA* machines.                         *)
(* ------------------------------------------------------------------ *)

type cluster = {
  machines : Ba_star.t array;
  timers : int option array;  (** latest timer token per machine *)
  decided : (string * bool) option array;
  hung : bool array;
  mutable queue : (int * Ba_star.action) list;  (** pending (origin, action) *)
  drop : (src:int -> dst:int -> Vote.t -> bool) ref;  (** message filter *)
}

let make_cluster ?(params = params) ?(n = 8) ?(round = 1) () : cluster =
  let sig_scheme = Signature_scheme.sim and vrf_scheme = Vrf.sim in
  let users =
    Array.init n (fun i ->
        Identity.generate ~sig_scheme ~vrf_scheme ~seed:(Printf.sprintf "ba%d" i))
  in
  let weight = 100 in
  let total_weight = weight * n in
  let prev_hash = String.make 32 'P' in
  let seed = "ba-seed" in
  let vctx : Vote.validation_ctx =
    {
      sig_scheme;
      vrf_scheme;
      sig_pk_of = Identity.sig_pk;
      vrf_pk_of = Identity.vrf_pk;
      seed;
      total_weight;
      weight_of = (fun _ -> weight);
      last_block_hash = prev_hash;
      tau_of_step = (function Vote.Final -> params.tau_final | _ -> params.tau_step);
    }
  in
  let empty_hash = Sha256.digest "the-empty-block" in
  let machine i =
    let ctx : Ba_star.ctx =
      {
        params;
        round;
        empty_hash;
        my_votes =
          (fun ~step ~value ->
            match
              Vote.make ~signer:users.(i).signer ~prover:users.(i).prover
                ~pk:users.(i).pk ~seed
                ~tau:(match step with Vote.Final -> params.tau_final | _ -> params.tau_step)
                ~w:weight ~total_weight ~round ~step ~prev_hash ~value
            with
            | Some v -> [ v ]
            | None -> []);
        validate = (fun v -> Vote.validate vctx v);
      }
    in
    Ba_star.create ctx
  in
  {
    machines = Array.init n machine;
    timers = Array.make n None;
    decided = Array.make n None;
    hung = Array.make n false;
    queue = [];
    drop = ref (fun ~src:_ ~dst:_ _ -> false);
  }

let empty_hash_of (_c : cluster) = Sha256.digest "the-empty-block"

(* Process queued actions until quiescent (synchronous delivery). *)
let rec settle (c : cluster) : unit =
  match c.queue with
  | [] -> ()
  | (origin, action) :: rest ->
    c.queue <- rest;
    (match action with
    | Ba_star.Broadcast v ->
      Array.iteri
        (fun dst m ->
          if not (!(c.drop) ~src:origin ~dst v) then begin
            let actions = Ba_star.handle m (Ba_star.Deliver v) in
            c.queue <- c.queue @ List.map (fun a -> (dst, a)) actions
          end)
        c.machines
    | Ba_star.Set_timer { token; delay = _ } -> c.timers.(origin) <- Some token
    | Ba_star.Bin_decided _ -> ()
    | Ba_star.Decided { value; final; _ } -> c.decided.(origin) <- Some (value, final)
    | Ba_star.Hang -> c.hung.(origin) <- true);
    settle c

let start (c : cluster) ~(inputs : int -> string) : unit =
  Array.iteri
    (fun i m ->
      let actions = Ba_star.handle m (Ba_star.Start (inputs i)) in
      c.queue <- c.queue @ List.map (fun a -> (i, a)) actions)
    c.machines;
  settle c

(* Fire every machine's latest timer (simulating a timeout round). *)
let fire_timers (c : cluster) : unit =
  Array.iteri
    (fun i m ->
      match c.timers.(i) with
      | Some token ->
        c.timers.(i) <- None;
        let actions = Ba_star.handle m (Ba_star.Timer token) in
        c.queue <- c.queue @ List.map (fun a -> (i, a)) actions
      | None -> ())
    c.machines;
  settle c

let run_to_completion ?(max_timeout_rounds = 40) (c : cluster) : unit =
  let rec go k =
    if k > max_timeout_rounds then ()
    else if Array.for_all (fun d -> d <> None) c.decided then ()
    else if Array.exists (fun h -> h) c.hung then ()
    else begin
      fire_timers c;
      go (k + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Tests.                                                              *)
(* ------------------------------------------------------------------ *)

let block_hash = Sha256.digest "proposed-block"

let happy_path () =
  let c = make_cluster () in
  start c ~inputs:(fun _ -> block_hash);
  run_to_completion c;
  Array.iteri
    (fun i d ->
      match d with
      | Some (v, final) ->
        Alcotest.(check string) (Printf.sprintf "machine %d value" i)
          (Hex.of_string block_hash) (Hex.of_string v);
        Alcotest.(check bool) (Printf.sprintf "machine %d final" i) true final
      | None -> Alcotest.failf "machine %d undecided" i)
    c.decided;
  (* Consensus in the very first BinaryBA* step. *)
  Array.iter
    (fun m -> Alcotest.(check int) "bin steps" 1 (Ba_star.bin_steps m))
    c.machines

let split_inputs_fall_back_to_empty () =
  (* Half the users got block A, half block B (a dishonest
     highest-priority proposer): Reduction must converge on the empty
     block, never on A or B. *)
  let c = make_cluster () in
  let other = Sha256.digest "other-block" in
  start c ~inputs:(fun i -> if i mod 2 = 0 then block_hash else other);
  run_to_completion c;
  let empty = empty_hash_of c in
  Array.iteri
    (fun i d ->
      match d with
      | Some (v, _) ->
        Alcotest.(check string) (Printf.sprintf "machine %d got empty" i)
          (Hex.of_string empty) (Hex.of_string v)
      | None -> Alcotest.failf "machine %d undecided" i)
    c.decided

let no_communication_hangs () =
  (* All votes dropped: every machine times out through MaxSteps and
     hangs rather than deciding (liveness lost, safety kept). *)
  let c = make_cluster ~n:4 () in
  (c.drop := fun ~src ~dst _ -> src <> dst);
  (* only own votes *)
  start c ~inputs:(fun _ -> block_hash);
  run_to_completion c ~max_timeout_rounds:200;
  Array.iter (fun d -> Alcotest.(check bool) "undecided" true (d = None)) c.decided;
  Alcotest.(check bool) "hung" true (Array.for_all (fun h -> h) c.hung)

let early_votes_count () =
  (* Machine 0 starts late: all other machines run first and their
     votes arrive before machine 0's Start. It must still decide
     immediately from buffered counters. *)
  let c = make_cluster () in
  (* Start machines 1..n-1 first. *)
  Array.iteri
    (fun i m ->
      if i > 0 then begin
        let actions = Ba_star.handle m (Ba_star.Start block_hash) in
        c.queue <- c.queue @ List.map (fun a -> (i, a)) actions
      end)
    c.machines;
  settle c;
  (* Now start machine 0; votes were delivered to it during settle. *)
  let actions = Ba_star.handle c.machines.(0) (Ba_star.Start block_hash) in
  c.queue <- c.queue @ List.map (fun a -> (0, a)) actions;
  settle c;
  run_to_completion c;
  (match c.decided.(0) with
  | Some (v, _) ->
    Alcotest.(check string) "late starter agrees" (Hex.of_string block_hash)
      (Hex.of_string v)
  | None -> Alcotest.fail "late starter undecided")

let stale_timer_ignored () =
  let c = make_cluster ~n:4 () in
  (* Drop everything so machines sit waiting in reduction one. *)
  (c.drop := fun ~src:_ ~dst:_ _ -> true);
  start c ~inputs:(fun _ -> block_hash);
  let m = c.machines.(0) in
  (* A long-stale token does nothing. *)
  let actions = Ba_star.handle m (Ba_star.Timer (-5)) in
  Alcotest.(check int) "no actions" 0 (List.length actions);
  (* Start in non-idle state is an error. *)
  Alcotest.check_raises "double start" (Invalid_argument
    "Ba_star.handle: Start in non-idle state") (fun () ->
      ignore (Ba_star.handle m (Ba_star.Start block_hash)))

let wrong_round_votes_ignored () =
  let c = make_cluster ~round:1 () in
  let c2 = make_cluster ~round:2 () in
  (* Generate a valid round-2 vote and feed it to a round-1 machine. *)
  start c2 ~inputs:(fun _ -> block_hash);
  (* Grab any vote from cluster 2's logs via a fresh broadcast: easier
     to simply synthesize using the machinery: *)
  start c ~inputs:(fun _ -> block_hash);
  run_to_completion c;
  (* The round-1 cluster decided on its own; feeding it a round-2 vote
     afterwards must produce no actions. *)
  let m = c.machines.(0) in
  let fake : Vote.t =
    {
      round = 2;
      step = Vote.Bin 1;
      voter_pk = "pk";
      sorthash = "h";
      sortproof = "";
      prev_hash = String.make 32 'P';
      value = block_hash;
      signature = "s";
    }
  in
  Alcotest.(check int) "ignored" 0 (List.length (Ba_star.handle m (Ba_star.Deliver fake)))

let certificate_votes_present () =
  let c = make_cluster () in
  start c ~inputs:(fun _ -> block_hash);
  run_to_completion c;
  let m = c.machines.(0) in
  let votes = Ba_star.certificate_votes m in
  Alcotest.(check bool) "has votes" true (List.length votes > 0);
  List.iter
    (fun (v : Vote.t) ->
      Alcotest.(check string) "all for decided value" (Hex.of_string block_hash)
        (Hex.of_string v.value))
    votes;
  let fvotes = Ba_star.final_certificate_votes m in
  Alcotest.(check bool) "has final votes" true (List.length fvotes > 0)

let adversarial_minority_cannot_flip () =
  (* 2 of 8 users (25% < 1/3) vote for a different value at every step
     while honest users all start with the same block: consensus on the
     honest block must still be reached and be final. *)
  let c = make_cluster ~n:8 () in
  let other = Sha256.digest "evil-block" in
  (* Byzantine machines are simulated by feeding them inverted inputs;
     they follow the protocol but push a conflicting value. *)
  start c ~inputs:(fun i -> if i < 2 then other else block_hash);
  run_to_completion c;
  Array.iteri
    (fun i d ->
      match d with
      | Some (v, _) ->
        Alcotest.(check string) (Printf.sprintf "machine %d" i) (Hex.of_string block_hash)
          (Hex.of_string v)
      | None -> Alcotest.failf "machine %d undecided" i)
    c.decided

let next_three_step_votes_sent () =
  (* After returning consensus, committee members vote the decided
     value for the next three steps (Algorithm 8's "carry forward"). *)
  let c = make_cluster () in
  start c ~inputs:(fun _ -> block_hash);
  run_to_completion c;
  let m = c.machines.(0) in
  Alcotest.(check int) "decided at bin step 1" 1 (Ba_star.bin_steps m);
  (* Every machine logged votes for bin steps 2..4 even though nobody
     entered them: they are the carry-forward votes. *)
  List.iter
    (fun s ->
      let votes =
        List.filter
          (fun (v : Vote.t) -> String.equal v.value block_hash)
          (Ba_star.logged_votes m (Vote.Bin s))
      in
      Alcotest.(check bool)
        (Printf.sprintf "carry votes at step %d" s)
        true
        (List.length votes > 0))
    [ 2; 3; 4 ]

let coin_branch_reached_on_timeouts () =
  (* Drop all committee votes: the machines walk branch A (timeout ->
     block_hash), branch B (timeout -> empty), branch C (timeout ->
     coin). With no votes observed the coin is 0, so the cycle repeats
     with r = block_hash. After 5 timeout rounds every machine must be
     waiting in bin step 4 (one full period + one step). *)
  let c = make_cluster ~n:4 () in
  (c.drop := fun ~src ~dst _ -> src <> dst);
  start c ~inputs:(fun _ -> block_hash);
  (* reduction-1, reduction-2, bin 1, bin 2, bin 3 *)
  for _ = 1 to 5 do
    fire_timers c
  done;
  Array.iter
    (fun m ->
      match Ba_star.phase m with
      | Ba_star.Bin_wait 4 -> ()
      | Ba_star.Bin_wait s -> Alcotest.failf "expected bin step 4, got %d" s
      | _ -> Alcotest.fail "expected Bin_wait")
    c.machines

let phases_progress () =
  let c = make_cluster ~n:4 () in
  (c.drop := fun ~src ~dst _ -> src <> dst);
  Array.iter
    (fun m -> Alcotest.(check bool) "idle" true (Ba_star.phase m = Ba_star.Idle))
    c.machines;
  start c ~inputs:(fun _ -> block_hash);
  Array.iter
    (fun m ->
      Alcotest.(check bool) "reduction one" true
        (Ba_star.phase m = Ba_star.Reduction_one_wait))
    c.machines;
  fire_timers c;
  Array.iter
    (fun m ->
      Alcotest.(check bool) "reduction two" true
        (Ba_star.phase m = Ba_star.Reduction_two_wait))
    c.machines

let tentative_when_final_votes_missing () =
  (* Deliver everything except Final-step votes: consensus is reached
     in bin step 1 but cannot be classified final. *)
  let c = make_cluster () in
  (c.drop := fun ~src:_ ~dst:_ (v : Vote.t) -> v.step = Vote.Final);
  start c ~inputs:(fun _ -> block_hash);
  run_to_completion c;
  Array.iteri
    (fun i d ->
      match d with
      | Some (v, final) ->
        Alcotest.(check string) "agreed value" (Hex.of_string block_hash) (Hex.of_string v);
        Alcotest.(check bool) (Printf.sprintf "machine %d tentative" i) false final
      | None -> Alcotest.failf "machine %d undecided" i)
    c.decided

let equivocating_votes_counted_once () =
  (* A byzantine voter whose my_votes returns two conflicting votes:
     honest counters must count at most one (the first) per pk. *)
  let c = make_cluster ~n:8 () in
  start c ~inputs:(fun _ -> block_hash);
  run_to_completion c;
  (* All decided the same value despite any duplicates. *)
  let values =
    Array.to_list c.decided |> List.filter_map (fun d -> Option.map fst d)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "single decided value" 1 (List.length values)

(* ------------------ section 9 look-back variant ------------------- *)

let lookback_happy_path () =
  let c = make_cluster ~params:lookback_params () in
  start c ~inputs:(fun _ -> block_hash);
  run_to_completion c;
  Array.iteri
    (fun i d ->
      match d with
      | Some (v, final) ->
        Alcotest.(check string) (Printf.sprintf "machine %d value" i)
          (Hex.of_string block_hash) (Hex.of_string v);
        Alcotest.(check bool) "final" true final
      | None -> Alcotest.failf "machine %d undecided" i)
    c.decided;
  (* The implementation variant sends no carry-forward votes. *)
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "no carry votes at step %d" s)
        0
        (List.length (Ba_star.logged_votes c.machines.(0) (Vote.Bin s))))
    [ 2; 3; 4 ]

let variants_decide_identically () =
  (* Across a matrix of input splits, the two section 9 formulations
     must reach the same decision values. *)
  List.iter
    (fun split ->
      let other = Sha256.digest "other-block" in
      let inputs i = if i mod split = 0 then block_hash else other in
      let run params =
        let c = make_cluster ~params () in
        start c ~inputs;
        run_to_completion c;
        Array.map (Option.map fst) c.decided
      in
      let a = run params and b = run lookback_params in
      Array.iteri
        (fun i v ->
          Alcotest.(check (option string))
            (Printf.sprintf "split %d machine %d" split i)
            (Option.map Hex.of_string v)
            (Option.map Hex.of_string b.(i)))
        a)
    [ 1; 2; 3 ]

let lookback_rescues_laggard () =
  (* Machine 0 misses every step-1 vote while the rest decide in step 1
     (and, in look-back mode, send no carry votes). When the withheld
     votes finally arrive, machine 0's step-1 counter crosses the
     threshold, and the look-back at its next timeout finds it. *)
  let c = make_cluster ~params:lookback_params () in
  let held = ref [] in
  (c.drop :=
     fun ~src:_ ~dst (v : Vote.t) ->
       if dst = 0 && Vote.equal_step v.step (Vote.Bin 1) then begin
         held := v :: !held;
         true
       end
       else false);
  start c ~inputs:(fun _ -> block_hash);
  (* Everyone but machine 0 decided. *)
  Array.iteri
    (fun i d -> if i > 0 && d = None then Alcotest.failf "machine %d undecided" i)
    c.decided;
  Alcotest.(check bool) "laggard undecided" true (c.decided.(0) = None);
  (* Deliver the withheld step-1 votes late; machine 0 is already past
     step 1 so they only fill the counter. *)
  (c.drop := fun ~src:_ ~dst:_ _ -> false);
  List.iter
    (fun v ->
      c.queue <- c.queue @ List.map (fun a -> (0, a)) (Ba_star.handle c.machines.(0) (Ba_star.Deliver v)))
    (List.rev !held);
  settle c;
  (* Next timeout triggers the look-back. *)
  run_to_completion c;
  match c.decided.(0) with
  | Some (v, _) ->
    Alcotest.(check string) "laggard decided via look-back" (Hex.of_string block_hash)
      (Hex.of_string v)
  | None -> Alcotest.fail "laggard still undecided"

let suite =
  [
    ( "ba_star",
      [
        t "happy path: final in one step" happy_path;
        t "look-back variant: happy path" lookback_happy_path;
        t "variants decide identically" variants_decide_identically;
        t "look-back rescues a laggard" lookback_rescues_laggard;
        t "carry-forward votes for next three steps" next_three_step_votes_sent;
        t "coin branch reached on timeouts" coin_branch_reached_on_timeouts;
        t "phases progress" phases_progress;
        t "tentative without final votes" tentative_when_final_votes_missing;
        t "equivocating votes counted once" equivocating_votes_counted_once;
        t "split inputs -> empty block" split_inputs_fall_back_to_empty;
        t "no communication -> hang, not decide" no_communication_hangs;
        t "early votes count" early_votes_count;
        t "stale timers and double start" stale_timer_ignored;
        t "wrong round votes ignored" wrong_round_votes_ignored;
        t "certificate votes extracted" certificate_votes_present;
        t "25% adversarial inputs cannot flip" adversarial_minority_cannot_flip;
      ] );
  ]
