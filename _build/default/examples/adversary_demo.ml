(* Adversary demo (section 10.4): 20% of the stake is malicious - the
   highest-priority proposer equivocates when it is malicious, and
   malicious committee members vote for two values - yet safety holds
   and latency degrades only mildly.

   Run with:  dune exec examples/adversary_demo.exe *)

module Harness = Algorand_core.Harness

let run ~malicious =
  let r =
    Harness.run
      {
        Harness.default with
        users = 30;
        rounds = 3;
        block_bytes = 200_000;
        malicious_fraction = malicious;
        attack = (if malicious > 0.0 then Harness.Equivocate else Harness.No_attack);
        tx_rate_per_s = 1.0;
        rng_seed = 77;
      }
  in
  Printf.printf
    "  %2.0f%% malicious: median round %.1fs, %d/%d rounds final, forks=%d, double-final=%d\n%!"
    (malicious *. 100.0) r.completion.median r.final_rounds
    (r.final_rounds + r.tentative_rounds)
    (List.length r.safety.forked_rounds)
    (List.length r.safety.double_final);
  assert (r.safety.double_final = [])

let () =
  Printf.printf "Equivocation attack at increasing malicious stake:\n";
  List.iter (fun m -> run ~malicious:m) [ 0.0; 0.1; 0.2 ];
  Printf.printf "safety held in every configuration (no double-final rounds)\n"
