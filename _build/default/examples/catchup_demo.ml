(* Catch-up demo (section 8.3): run a network for a few rounds, then
   bootstrap a brand-new user from downloaded blocks + certificates,
   verifying everything from genesis - including a final certificate
   that proves safety of the newest block.

   Run with:  dune exec examples/catchup_demo.exe *)

module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Catchup = Algorand_core.Catchup
module Certificate = Algorand_core.Certificate
module Chain = Algorand_ledger.Chain
open Algorand_crypto

let () =
  let config =
    {
      Harness.default with
      users = 20;
      rounds = 3;
      block_bytes = 50_000;
      tx_rate_per_s = 3.0;
      rng_seed = 9;
    }
  in
  Printf.printf "Running %d users for %d rounds...\n%!" config.users config.rounds;
  let r = Harness.run config in
  assert (r.safety.double_final = []);
  (* Pick a bootstrap server: any node holding all certificates. *)
  let server =
    Array.to_list r.harness.nodes
    |> List.find (fun n ->
           List.for_all (fun round -> Node.certificate n ~round <> None) [ 1; 2; 3 ])
  in
  let history = Catchup.collect server ~up_to_round:3 in
  let bytes =
    List.fold_left
      (fun acc (i : Catchup.item) ->
        acc
        + Algorand_ledger.Block.size_bytes i.block
        + Certificate.size_bytes i.certificate)
      0 history
  in
  Printf.printf "downloaded %d certified blocks (%d KB including certificates)\n"
    (List.length history) (bytes / 1024);
  let final_certificate = Node.final_certificate server ~round:3 in
  (match final_certificate with
  | Some fc -> Printf.printf "final certificate for round 3: %d votes\n" (List.length fc.votes)
  | None -> Printf.printf "no final certificate available\n");
  match
    Catchup.replay ~params:config.params ~sig_scheme:Signature_scheme.sim
      ~vrf_scheme:Vrf.sim ~genesis:r.harness.genesis ?final_certificate history
  with
  | Error e -> Format.printf "catch-up failed: %a@." Catchup.pp_error e
  | Ok chain ->
    let tip = Chain.tip chain in
    Printf.printf "new user caught up to round %d, tip %s%s\n" tip.height
      (Hex.of_string (String.sub tip.hash 0 6))
      (if tip.final then " [proven final]" else "");
    assert (String.equal tip.hash (Chain.tip (Node.chain server)).hash);
    Printf.printf "tip matches the network: bootstrap verified from genesis\n";
    (* Light-client mode: verify one committed payment from a ~300 B
       block summary, the certificate, and a Merkle proof - no block
       bodies at all (the section 11 "cost of joining" answer). *)
    let module Block = Algorand_ledger.Block in
    let module Transaction = Algorand_ledger.Transaction in
    let module Lightclient = Algorand_core.Lightclient in
    (match
       List.find_opt
         (fun (e : Chain.entry) -> e.height > 0 && e.block.txs <> [])
         (List.rev (Chain.ancestry chain tip.hash))
     with
    | None -> Printf.printf "no transactions committed; skipping light-client demo\n"
    | Some entry -> (
      let tx = List.hd entry.block.txs in
      let tx_id = Transaction.id tx in
      let summary = Block.summarize entry.block in
      let proof = Option.get (Block.prove_tx entry.block ~tx_id) in
      let certificate =
        List.find
          (fun (i : Catchup.item) -> Algorand_ledger.Block.round i.block = entry.height)
          history
      in
      let ctx =
        Catchup.validation_ctx ~params:config.params
          ~sig_scheme:Signature_scheme.sim ~vrf_scheme:Vrf.sim ~chain
          ~round:entry.height
      in
      let ctx = { ctx with last_block_hash = entry.parent } in
      match
        Lightclient.verify_payment ~params:config.params ~ctx ~summary
          ~certificate:certificate.certificate ~tx_id ~proof
      with
      | Ok v ->
        Printf.printf
          "light client verified payment %s in round %d from %d header bytes + %d proof bytes\n"
          (Hex.of_string (String.sub tx_id 0 6))
          v.round Lightclient.summary_size_bytes
          (Algorand_crypto.Merkle.proof_size_bytes proof)
      | Error e -> Format.printf "light verification failed: %a@." Lightclient.pp_error e))
