(* Quickstart: spin up a small simulated Algorand deployment, submit a
   payment, watch the network reach final consensus, and inspect the
   resulting chain. Run with:  dune exec examples/quickstart.exe *)

module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Chain = Algorand_ledger.Chain
module Block = Algorand_ledger.Block

let () =
  let config =
    {
      Harness.default with
      users = 20;
      rounds = 3;
      block_bytes = 100_000;
      tx_rate_per_s = 2.0;
    }
  in
  Printf.printf "Running %d users for %d rounds (%d-byte blocks)...\n%!" config.users
    config.rounds config.block_bytes;
  let result = Harness.run config in
  Printf.printf "Simulated %.1fs of network time (%d events).\n" result.sim_time
    result.events;
  Printf.printf "Round completion across users: %s\n"
    (Format.asprintf "%a" Algorand_sim.Stats.pp_summary result.completion);
  Printf.printf "Safety: %d agreed rounds, %d forked, %d double-final (must be 0)\n"
    result.safety.agreement_rounds
    (List.length result.safety.forked_rounds)
    (List.length result.safety.double_final);
  Printf.printf "Finality: %d final rounds, %d tentative\n" result.final_rounds
    result.tentative_rounds;
  (* Walk node 0's chain. *)
  let chain = Node.chain result.harness.nodes.(0) in
  let tip = Chain.tip chain in
  List.iter
    (fun (e : Chain.entry) ->
      Printf.printf "  height %d: %s%s (%d txs)\n" e.height
        (if Block.is_empty e.block then "empty" else "block")
        (if e.final then " [final]" else "")
        (List.length e.block.txs))
    (Chain.ancestry chain tip.hash)
