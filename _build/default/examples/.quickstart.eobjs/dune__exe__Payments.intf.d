examples/payments.mli:
