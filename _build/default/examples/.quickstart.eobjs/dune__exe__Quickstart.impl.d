examples/quickstart.ml: Algorand_core Algorand_ledger Algorand_sim Array Format List Printf
