examples/adversary_demo.ml: Algorand_core List Printf
