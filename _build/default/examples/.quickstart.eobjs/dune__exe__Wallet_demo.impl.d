examples/wallet_demo.ml: Algorand_core Algorand_crypto Algorand_sim Array Format List Option Printf String
