examples/payments.ml: Algorand_core Algorand_ledger Algorand_sim Array List Printf String
