examples/partition_recovery.mli:
