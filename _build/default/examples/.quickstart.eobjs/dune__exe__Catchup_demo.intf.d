examples/catchup_demo.mli:
