examples/partition_recovery.ml: Algorand_ba Algorand_core Algorand_ledger Array List Printf String
