examples/wallet_demo.mli:
