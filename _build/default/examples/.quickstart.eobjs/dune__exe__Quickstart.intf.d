examples/quickstart.mli:
