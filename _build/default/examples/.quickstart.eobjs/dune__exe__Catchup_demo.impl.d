examples/catchup_demo.ml: Algorand_core Algorand_crypto Algorand_ledger Array Format Hex List Option Printf Signature_scheme String Vrf
