(* Partition and recovery demo (section 8.2): the network is split in
   half (weak synchrony); neither half can cross the BA* vote
   threshold, so progress stops and nodes eventually hang. After the
   partition heals, the clock-synchronized recovery protocol proposes
   the longest fork, agrees on it with BA*, and normal rounds resume.

   Run with:  dune exec examples/partition_recovery.exe *)

module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Chain = Algorand_ledger.Chain

let () =
  let params =
    {
      Algorand_ba.Params.paper with
      lambda_priority = 1.0;
      lambda_stepvar = 1.0;
      lambda_block = 10.0;
      lambda_step = 5.0;
      max_steps = 6;
      recovery_interval = 150.0;
    }
  in
  let config =
    {
      Harness.default with
      users = 20;
      rounds = 3;
      params;
      block_bytes = 20_000;
      tx_rate_per_s = 0.0;
      attack = Harness.Partition { from_ = 4.0; until = 100.0 };
      recovery_enabled = true;
      max_sim_time = 600.0;
      rng_seed = 8;
    }
  in
  Printf.printf "partition from t=4s to t=100s; recovery ticks every %.0fs\n%!"
    params.recovery_interval;
  let r = Harness.run config in
  Printf.printf "simulated %.0fs\n" r.sim_time;
  Printf.printf "safety: %d forked rounds, %d double-final (must be 0)\n"
    (List.length r.safety.forked_rounds)
    (List.length r.safety.double_final);
  assert (r.safety.double_final = []);
  let recoveries =
    Array.fold_left (fun acc n -> acc + Node.recoveries_completed n) 0 r.harness.nodes
  in
  Printf.printf "recoveries completed across users: %d\n" recoveries;
  Array.iteri
    (fun i n ->
      if i < 3 then begin
        let chain = Node.chain n in
        let tip = Chain.tip chain in
        Printf.printf "node %d chain: %s\n" i
          (String.concat " <- "
             (List.rev_map
                (fun (e : Chain.entry) ->
                  Printf.sprintf "r%d%s" e.height
                    (if Algorand_ledger.Block.is_empty e.block then "(empty)" else ""))
                (Chain.ancestry chain tip.hash)))
      end)
    r.harness.nodes;
  let tip0 = (Chain.tip (Node.chain r.harness.nodes.(0))).hash in
  Array.iter (fun n -> assert (String.equal tip0 (Chain.tip (Node.chain n)).hash)) r.harness.nodes;
  Printf.printf "liveness recovered: all %d users converged after the partition\n"
    config.users
