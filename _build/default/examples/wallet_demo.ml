(* Wallet demo: the end-user view of Algorand. Human-readable
   checksummed addresses, sequential payments through a wallet, and the
   confirmation lifecycle (pending -> tentative/confirmed) driven by
   final consensus.

   Run with:  dune exec examples/wallet_demo.exe *)

module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Wallet = Algorand_core.Wallet
module Base32 = Algorand_crypto.Base32

let () =
  let config =
    {
      Harness.default with
      users = 16;
      rounds = 3;
      block_bytes = 30_000;
      tx_rate_per_s = 0.0;
      rng_seed = 63;
    }
  in
  let h = Harness.build config in
  let alice = Wallet.create ~identity:h.identities.(0) ~node:h.nodes.(0) in
  let bob = Wallet.create ~identity:h.identities.(1) ~node:h.nodes.(1) in
  let alice_addr = Base32.address_of_pk (Wallet.address alice) in
  let bob_addr = Base32.address_of_pk (Wallet.address bob) in
  Printf.printf "alice: %s...\n" (String.sub alice_addr 0 24);
  Printf.printf "bob:   %s...\n" (String.sub bob_addr 0 24);
  (* The checksum catches typos before anything reaches the network. *)
  let typo = "A" ^ String.sub bob_addr 1 (String.length bob_addr - 1) in
  (match Base32.pk_of_address typo with
  | None -> Printf.printf "typo'd address rejected by checksum\n"
  | Some _ -> assert false);
  let payment = ref None in
  Algorand_sim.Engine.schedule h.engine ~delay:0.5 (fun () ->
      let tx = Wallet.pay alice ~to_:(Wallet.address bob) ~amount:300 in
      payment := Some tx;
      Format.printf "t=0.5s  payment submitted: %a@." Wallet.pp_status
        (Wallet.status alice tx));
  (* Poll the status as rounds land. *)
  List.iter
    (fun t ->
      Algorand_sim.Engine.schedule h.engine ~delay:t (fun () ->
          match !payment with
          | Some tx ->
            Format.printf "t=%.0fs   status: %a@." t Wallet.pp_status
              (Wallet.status alice tx)
          | None -> ()))
    [ 8.0; 15.0; 30.0 ];
  Array.iter Node.start h.nodes;
  ignore (Algorand_sim.Engine.run h.engine ~until:config.max_sim_time ());
  let tx = Option.get !payment in
  Format.printf "final:  %a@." Wallet.pp_status (Wallet.status alice tx);
  Printf.printf "alice balance: %d   bob balance: %d\n" (Wallet.balance alice)
    (Wallet.balance bob);
  assert ((Harness.audit_safety h).double_final = []);
  match Wallet.status alice tx with
  | Wallet.Confirmed _ -> Printf.printf "payment confirmed by final consensus\n"
  | s -> Format.printf "unexpected final status: %a@." Wallet.pp_status s
