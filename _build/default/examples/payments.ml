(* Payments: the workload the paper's introduction motivates. Wallets
   submit payments (including a double-spend attempt), the network
   commits them, and we verify that exactly one of the conflicting
   payments confirmed and that every user sees identical balances.

   Run with:  dune exec examples/payments.exe *)

module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Identity = Algorand_core.Identity
module Chain = Algorand_ledger.Chain
module Balances = Algorand_ledger.Balances
module Transaction = Algorand_ledger.Transaction

let () =
  let config =
    {
      Harness.default with
      users = 20;
      rounds = 2;
      block_bytes = 50_000;
      tx_rate_per_s = 0.0 (* we drive the workload by hand below *);
      rng_seed = 12;
    }
  in
  let h = Harness.build config in
  Harness.install_workload h;
  let alice = h.identities.(0) and bob = h.identities.(1) and carol = h.identities.(2) in
  (* A normal payment, submitted at Alice's node half a second in. *)
  let pay recipient amount nonce =
    Transaction.make ~signer:alice.Identity.signer ~sender:alice.pk ~recipient ~amount
      ~nonce
  in
  Algorand_sim.Engine.schedule h.engine ~delay:0.5 (fun () ->
      Node.submit_tx h.nodes.(0) (pay bob.pk 250 0);
      (* Double-spend attempt: two transactions with the same nonce,
         spending the same money to different recipients, injected at
         two different nodes. At most one can confirm. *)
      Node.submit_tx h.nodes.(0) (pay bob.pk 750 1);
      Node.submit_tx h.nodes.(5) (pay carol.pk 750 1));
  Array.iter Node.start h.nodes;
  ignore (Algorand_sim.Engine.run h.engine ~until:config.max_sim_time ());
  let safety = Harness.audit_safety h in
  Printf.printf "double-final rounds (must be none): %d\n"
    (List.length safety.double_final);
  (* Inspect final balances on every node: all identical, and only one
     of the conflicting payments went through. *)
  let tip0 = Chain.tip (Node.chain h.nodes.(0)) in
  let balance_of pk = Balances.balance tip0.balances_after pk in
  Printf.printf "alice: %d  bob: %d  carol: %d (initial stake %d each)\n"
    (balance_of alice.pk) (balance_of bob.pk) (balance_of carol.pk)
    config.stake_per_user;
  let bob_paid = balance_of bob.pk = config.stake_per_user + 250 + 750 in
  let carol_paid = balance_of carol.pk = config.stake_per_user + 750 in
  assert (balance_of alice.pk = config.stake_per_user - 1000);
  assert (bob_paid <> carol_paid);
  Printf.printf "double-spend resolved: the 750 went to %s only\n"
    (if bob_paid then "bob" else "carol");
  Array.iter
    (fun n ->
      let tip = Chain.tip (Node.chain n) in
      assert (String.equal tip.hash tip0.hash))
    h.nodes;
  Printf.printf "all %d users agree on the ledger\n" config.users
